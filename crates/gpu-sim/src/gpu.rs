//! The multi-SM GPU engine: CTA dispatch, per-SM memory ports, and the
//! barrier-synchronised parallel execution loop.
//!
//! [`Gpu`] turns the single-[`Sm`] simulator into a chip: the
//! [`crate::dispatch`] module's policies split one or more co-running
//! kernels' grids across `num_sms` SM engines, every SM's L1 misses travel
//! over its own [`gpu_mem::Crossbar`] port into one shared, banked L2 + DRAM
//! backend ([`gpu_mem::BankedMemorySystem`]) with per-tenant attribution, and
//! the per-SM cycle loops execute in parallel with `std::thread::scope`.
//!
//! ## The pipelined memory backend
//!
//! Results must not depend on how the OS schedules SM worker threads, so the
//! engine advances all SMs in lockstep *epochs* of
//! [`GpuConfig::effective_epoch_cycles`] cycles and routes every
//! global-memory request through a deterministic service pipeline:
//!
//! ```text
//!  SM 0 ──port──┐  (per-SM injection link: latency + bytes/cycle)
//!  SM 1 ──port──┼──► reorder window ──► request fabric ──► bank shards
//!   ⋮           │    (merge epochs by    (chip-wide B/cy   (L2+DRAM banks,
//!  SM N ──port──┘     true arrival)       budget, SM→L2)    parallel workers)
//!                                                               │
//!  SM event queues ◄── deliveries ◄── reply fabric ◄── reply reorder window
//!                     (next barrier)  (chip-wide B/cy    (merge epochs by
//!                                      budget, L2→SM)     completion cycle)
//! ```
//!
//! 1. **Parallel phase** — every SM runs its epoch against purely SM-local
//!    state. Global-memory requests are time-stamped with their injection
//!    -port arrival cycle and buffered in the SM's [`MemoryPort`], not
//!    served. *Concurrently*, the engine's barrier thread services the batch
//!    drained at the previous boundary: the batch passes the shared request
//!    fabric in `(arrival, SM, issue order)` order, is sharded by L2 bank and
//!    served by up to [`GpuConfig::effective_service_threads`] workers (banks
//!    are independently locked, shards are disjoint, per-bank order is fixed
//!    by the sort — so worker count never changes results).
//! 2. **Barrier phase** — read completions enter the *reply reorder window*
//!    and every reply completing by `boundary + epoch` (which no later-served
//!    batch can precede) crosses the reply fabric in global completion order
//!    and is delivered into its SM's event queue. The SMs' request buffers
//!    are then drained and merged with the *request reorder window*: requests
//!    whose port arrival lands at or before the merge horizon
//!    (`boundary + interconnect latency`) are batched for service, later
//!    arrivals — which the next epoch's requests could still precede — are
//!    held (up to [`GpuConfig::reorder_window`] entries per window) and
//!    merged with the next drain. Both windows make adjacent epochs' traffic
//!    interleave by true time instead of batch-major order.
//!
//! Because the epoch length is clamped to *half* the minimum SM→L2 round
//! trip, a response computed one epoch after its request was drained still
//! completes at or after the delivering boundary — service overlaps SM
//! execution without ever landing in an SM's past, and the overlap is pure
//! wall-clock win. Everything the service pipeline mutates (fabric, window,
//! banks) is touched only by the barrier thread and its shard workers, in an
//! order fixed by the batch sort, so results are bit-identical across host
//! thread counts *and* service worker counts.
//!
//! With a single SM the engine skips the epoch machinery entirely and gives
//! the SM a private memory partition, reproducing the legacy single-SM
//! simulator bit for bit — the built-in correctness anchor for the multi-SM
//! path.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crate::config::GpuConfig;
use crate::dispatch::{
    build_dispatch, AdaptiveDispatcher, DeferredBatch, DispatchPolicy, KernelStream, TenantSignal,
};
use crate::kernel::Kernel;
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::simulator::{SimResult, TenantResult};
use crate::sm::{ResponseEvent, Sm};
use crate::stats::{DispatchLog, InterferenceMatrix, SmStats, TenantStats, TimeSeries};
use crate::timeq::TimeQueue;
use gpu_mem::interconnect::{Crossbar, CrossbarFabric};
use gpu_mem::l2::{BankedMemorySystem, MemoryPartition, PartitionConfig, PartitionObs};
use gpu_mem::{merge_tenant_stats, Addr, Cycle, TenantId, TenantMemStats, WarpId};
use parking_lot::Mutex;
use sim_obs::{ObsLevel, ObsReport, PhaseProfiler, TraceEvent, TraceRecorder, Tracer, Track};

/// Batches smaller than this are served serially even when shard workers are
/// configured: spawning scoped workers costs more than serving a handful of
/// requests, and results are identical either way.
const PARALLEL_SERVICE_MIN_BATCH: usize = 64;

/// A read response computed by the service pipeline, awaiting delivery into
/// its SM's event queue at the next epoch boundary.
#[derive(Debug, Clone, Copy)]
struct ReadyResponse {
    sm: usize,
    done: Cycle,
    event: ResponseEvent,
}

/// A read completion leaving the banks, before it crosses the reply fabric.
/// Completions are held in the cross-epoch reply reorder window until no
/// later-served batch can complete before them, so the reply fabric sees a
/// globally time-ordered stream (a FIFO pipe presented with out-of-order
/// completions would charge phantom queueing against every reply behind one
/// slow DRAM straggler).
#[derive(Debug, Clone, Copy)]
struct RawCompletion {
    sm: usize,
    seq: u64,
    done: Cycle,
    tenant: TenantId,
    event: Option<ResponseEvent>,
}

/// One SM's policy unit: its warp scheduler plus the optional redirect cache
/// the CIAO variants install. Multi-SM chips need one unit per SM because
/// policies carry per-SM state (VTAs, interference lists, throttle sets).
pub type SmUnit = (Box<dyn WarpScheduler>, Option<Box<dyn RedirectCache>>);

/// A global-memory request buffered by a [`MemoryPort`] during an epoch's
/// parallel phase and served against the shared backend at the barrier.
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Cycle at which the request arrives at the L2 side of the SM's
    /// interconnect port (already includes link latency and queueing).
    pub arrive: Cycle,
    /// Issue order within the SM (tie-break for deterministic service).
    pub seq: u64,
    /// Block-aligned address.
    pub block: Addr,
    /// Requesting warp (SM-local id).
    pub wid: WarpId,
    /// Tenant the request is attributed to at the shared backend.
    pub tenant: TenantId,
    /// Whether this is a write.
    pub is_write: bool,
    /// Whether the request bypasses the L2 (statPCAL path).
    pub bypass: bool,
    /// Completion event to deliver back to the SM, if the warp waits on it.
    pub event: Option<ResponseEvent>,
}

/// The SM's port into the downstream memory system.
///
/// `Private` owns a full [`MemoryPartition`] and serves every request at
/// issue time — the legacy single-SM configuration. `Deferred` buffers
/// requests for epoch-barrier service by the [`Gpu`] engine and carries the
/// chip DRAM-utilisation snapshot the scheduler context reads during the
/// parallel phase.
pub enum MemoryPort {
    /// Synchronous private partition (single-SM runs).
    Private(Box<MemoryPartition>),
    /// Epoch-deferred port into the shared chip backend (multi-SM runs).
    Deferred(DeferredPort),
}

/// Request buffer + utilisation snapshot of a deferred port.
#[derive(Debug, Default)]
pub struct DeferredPort {
    queue: Vec<MemRequest>,
    seq: u64,
    dram_utilization: f64,
}

impl MemoryPort {
    /// A private synchronous port over its own partition.
    pub fn private(config: PartitionConfig) -> Self {
        MemoryPort::Private(Box::new(MemoryPartition::new(config)))
    }

    /// A deferred port (requests served by the engine at epoch barriers).
    pub fn deferred() -> Self {
        MemoryPort::Deferred(DeferredPort::default())
    }

    /// Issues a read attributed to `tenant`. Returns `Some(done)` when served
    /// synchronously; `None` when buffered for barrier service (the event is
    /// delivered later).
    pub fn read(
        &mut self,
        block: Addr,
        wid: WarpId,
        tenant: TenantId,
        arrive: Cycle,
        bypass: bool,
        event: ResponseEvent,
    ) -> Option<Cycle> {
        match self {
            MemoryPort::Private(p) => Some(if bypass {
                p.access_bypass_tagged(block, tenant, arrive)
            } else {
                p.access_tagged(block, wid, tenant, false, arrive)
            }),
            MemoryPort::Deferred(d) => {
                d.push(MemRequest {
                    arrive,
                    seq: 0,
                    block,
                    wid,
                    tenant,
                    is_write: false,
                    bypass,
                    event: Some(event),
                });
                None
            }
        }
    }

    /// Issues a write attributed to `tenant` (fire-and-forget: consumes
    /// downstream bandwidth but never blocks the warp).
    pub fn write(
        &mut self,
        block: Addr,
        wid: WarpId,
        tenant: TenantId,
        arrive: Cycle,
        bypass: bool,
    ) {
        match self {
            MemoryPort::Private(p) => {
                if bypass {
                    p.access_bypass_tagged(block, tenant, arrive);
                } else {
                    p.access_tagged(block, wid, tenant, true, arrive);
                }
            }
            MemoryPort::Deferred(d) => d.push(MemRequest {
                arrive,
                seq: 0,
                block,
                wid,
                tenant,
                is_write: true,
                bypass,
                event: None,
            }),
        }
    }

    /// DRAM data-bus utilisation visible to the scheduler: live for a
    /// private port, the epoch-start snapshot for a deferred one.
    pub fn dram_utilization(&self, now: Cycle) -> f64 {
        match self {
            MemoryPort::Private(p) => p.dram_bandwidth_utilization(now),
            MemoryPort::Deferred(d) => d.dram_utilization,
        }
    }

    /// Drains the buffered requests (empty for a private port).
    pub fn drain(&mut self) -> Vec<MemRequest> {
        match self {
            MemoryPort::Private(_) => Vec::new(),
            MemoryPort::Deferred(d) => std::mem::take(&mut d.queue),
        }
    }

    /// Updates the utilisation snapshot (no-op for a private port).
    pub fn set_dram_utilization(&mut self, util: f64) {
        if let MemoryPort::Deferred(d) = self {
            d.dram_utilization = util;
        }
    }

    /// The private partition's statistics, if this port owns one.
    pub fn partition_stats(&self) -> Option<gpu_mem::PartitionStats> {
        match self {
            MemoryPort::Private(p) => Some(p.stats()),
            MemoryPort::Deferred(_) => None,
        }
    }

    /// The private partition's per-tenant attribution, if this port owns one.
    pub fn partition_tenant_stats(&self) -> Option<Vec<TenantMemStats>> {
        match self {
            MemoryPort::Private(p) => Some(p.tenant_stats().to_vec()),
            MemoryPort::Deferred(_) => None,
        }
    }

    /// Arms a private partition's observability sink as bank 0 (no-op for a
    /// deferred port — the shared backend's banks own their sinks).
    pub fn enable_obs(&mut self, trace_on: bool) {
        if let MemoryPort::Private(p) = self {
            p.enable_obs(0, trace_on);
        }
    }

    /// Detaches the private partition's observability sink, if any.
    pub fn take_obs(&mut self) -> Option<Box<PartitionObs>> {
        match self {
            MemoryPort::Private(p) => p.take_obs(),
            MemoryPort::Deferred(_) => None,
        }
    }
}

impl DeferredPort {
    fn push(&mut self, mut req: MemRequest) {
        req.seq = self.seq;
        self.seq += 1;
        self.queue.push(req);
    }
}

/// The chip-level engine: `num_sms` SMs, one shared banked L2/DRAM backend,
/// and the deterministic epoch loop. See the module docs for the execution
/// model.
pub struct Gpu {
    config: GpuConfig,
    kernel_name: String,
    scheduler_name: String,
    tenant_names: Vec<String>,
    /// Per-tenant latency-class labels ([`crate::dispatch::LatencyClass`]),
    /// copied into [`TenantResult::qos`].
    tenant_qos: Vec<&'static str>,
    policy: DispatchPolicy,
    sms: Vec<Mutex<Sm>>,
    shared: Option<Arc<BankedMemorySystem>>,
    /// The shared request/reply crossbar fabric (multi-SM chips only).
    fabric: Option<CrossbarFabric>,
    /// Cross-epoch reorder window: requests drained at an earlier boundary
    /// whose port arrival was still mergeable with future traffic.
    window: Vec<(usize, MemRequest)>,
    /// Cross-epoch reply reorder window: bank completions not yet released
    /// through the reply fabric because a later-served batch could still
    /// complete before them.
    reply_window: Vec<RawCompletion>,
    /// Arrival-deferred per-SM work batches (static policies), ascending by
    /// arrival cycle; drained as epoch boundaries pass their arrivals.
    deferred: Vec<DeferredBatch>,
    /// The run-time dispatcher of the `InterferenceAware` policy.
    adaptive: Option<AdaptiveDispatcher>,
    dispatch_log: DispatchLog,
    cycle: Cycle,
    /// Label of the timing backend that ran the chip (`"epoch"` until
    /// [`Gpu::run_event`] is used); recorded into [`SimResult::backend`].
    backend: &'static str,
    /// Observability level requested via [`Gpu::set_obs`] (`Off` leaves the
    /// engine untouched — no sinks, no profiling, no trace rings).
    obs: ObsLevel,
    /// Wall-clock phase profiler over the engine's boundary pipeline
    /// (inert unless `obs` enables metrics; never feeds [`SimResult`]).
    profiler: PhaseProfiler,
    /// Engine-internal trace ring (event-queue pops). Its events carry
    /// [`sim_obs::TraceCategory::Engine`] and are excluded from the
    /// canonical sim-time export, which must be backend-invariant.
    engine_trace: Option<TraceRecorder>,
    /// Boundaries the event engine skipped in closed form via whole-chip
    /// sleep (always 0 under the epoch backend). Surfaced as the
    /// `engine/skipped-boundaries` metric, which — like every `engine/`
    /// metric — is excluded from the canonical backend-invariant export.
    skipped_boundaries: u64,
    /// Number of whole-chip sleep episodes (runs of consecutive skipped
    /// boundaries) the event engine took.
    sleeps: u64,
}

/// Reusable scratch for [`Gpu::serve_batch_event`]: unit 0 of the queue is
/// the request fabric, unit `1 + b` is L2/DRAM bank `b`. The fabric charges
/// requests one at a time at their true arrival cycles; each charged request
/// joins its bank's FIFO, and the bank pops its next due request when its
/// service instant comes up. Both queue and FIFOs drain completely within one
/// batch, so the scratch carries no state across boundaries.
struct ServePump {
    timeq: TimeQueue,
    fifos: Vec<std::collections::VecDeque<usize>>,
}

impl ServePump {
    fn new(num_banks: usize) -> Self {
        ServePump {
            timeq: TimeQueue::new(1 + num_banks),
            fifos: (0..num_banks).map(|_| std::collections::VecDeque::new()).collect(),
        }
    }
}

impl Gpu {
    /// Builds a chip running the single `kernel` with one
    /// `(scheduler, redirect)` unit per SM; `units.len()` is the number of
    /// SMs simulated. Equivalent to [`Gpu::with_streams`] with one stream
    /// (every policy degenerates to round-robin CTA dispatch across all
    /// SMs); the result is labelled `exclusive` — the kernel owns the whole
    /// chip, matching what [`crate::Simulator::execute`] reports for the
    /// same situation.
    pub fn new(config: GpuConfig, kernel: Arc<dyn Kernel>, units: Vec<SmUnit>) -> Self {
        let stream = KernelStream::new(0, kernel);
        Self::with_streams(config, vec![stream], DispatchPolicy::Exclusive, units)
    }

    /// Builds a chip co-running `streams` under `policy`'s SM assignment with
    /// one `(scheduler, redirect)` unit per SM; `units.len()` is the number
    /// of SMs simulated. Stream tenant ids must be dense (`0..streams.len()`,
    /// in order) so per-tenant tables across the engine line up.
    pub fn with_streams(
        config: GpuConfig,
        streams: Vec<KernelStream>,
        policy: DispatchPolicy,
        units: Vec<SmUnit>,
    ) -> Self {
        assert!(!units.is_empty(), "a GPU needs at least one SM");
        assert!(!streams.is_empty(), "a GPU needs at least one kernel stream");
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.tenant as usize, i, "stream tenant ids must be dense and in order");
        }
        let num_sms = units.len();
        let mut dispatch_plan = build_dispatch(
            &streams,
            num_sms,
            policy,
            config.max_warps_per_sm,
            config.effective_epoch_cycles(),
        );
        dispatch_plan.deferred.sort_by_key(|b| b.arrival);
        let assignments = std::mem::take(&mut dispatch_plan.initial);
        let tenant_names: Vec<String> = streams.iter().map(|s| s.info().name.clone()).collect();
        let tenant_qos: Vec<&'static str> = streams.iter().map(|s| s.qos.latency.label()).collect();
        let kernel_name = tenant_names.join("+");
        let shared = (num_sms > 1).then(|| {
            // Bank count is clamped to one per two SMs (the GTX 480 ratio:
            // 15 SMs over 6 partitions). Each bank owns a private data bus,
            // so over-sharding a small chip's bandwidth would lose more to
            // transient channel imbalance than bank parallelism returns.
            Arc::new(BankedMemorySystem::for_chip(
                config.partition.clone(),
                config.l2_banks.min((num_sms / 2).max(1)),
                num_sms,
            ))
        });
        let links = Crossbar::new(
            num_sms,
            config.interconnect_latency,
            config.interconnect_bytes_per_cycle,
        )
        .into_ports();
        let mut scheduler_name = String::new();
        let sms = units
            .into_iter()
            .zip(assignments)
            .zip(links)
            .map(|(((scheduler, redirect), work), link)| {
                if scheduler_name.is_empty() {
                    scheduler_name = scheduler.name().to_string();
                }
                let port = if num_sms > 1 {
                    MemoryPort::deferred()
                } else {
                    MemoryPort::private(config.partition.clone())
                };
                Mutex::new(Sm::with_parts(config.clone(), work, scheduler, redirect, link, port))
            })
            .collect();
        let fabric = (num_sms > 1).then(|| CrossbarFabric::new(config.xbar_chip_bytes_per_cycle));
        Gpu {
            config,
            kernel_name,
            scheduler_name,
            tenant_names,
            tenant_qos,
            policy,
            sms,
            shared,
            fabric,
            window: Vec::new(),
            reply_window: Vec::new(),
            deferred: dispatch_plan.deferred,
            adaptive: dispatch_plan.adaptive,
            dispatch_log: DispatchLog::default(),
            cycle: 0,
            backend: crate::event::BackendKind::Epoch.label(),
            obs: ObsLevel::Off,
            profiler: PhaseProfiler::default(),
            engine_trace: None,
            skipped_boundaries: 0,
            sleeps: 0,
        }
    }

    /// Arms observability collection at `level`. Call before running the
    /// chip: `Metrics` (and above) attaches per-bank latency histograms and
    /// enables the wall-clock phase profiler; `Full` additionally attaches
    /// sim-time trace rings to every SM, L2 bank and fabric direction.
    /// `Off` (the default) leaves the engine exactly as built — the hot
    /// paths see only a dormant `Option` check.
    pub fn set_obs(&mut self, level: ObsLevel) {
        self.obs = level;
        if level.metrics_enabled() {
            self.profiler = PhaseProfiler::enabled();
            if let Some(shared) = &self.shared {
                shared.enable_obs(level.trace_enabled());
            } else {
                for sm in &mut self.sms {
                    sm.get_mut().enable_port_obs(level.trace_enabled());
                }
            }
        }
        if level.trace_enabled() {
            for (i, sm) in self.sms.iter_mut().enumerate() {
                sm.get_mut().set_trace(i as u32);
            }
            if let Some(fabric) = &mut self.fabric {
                fabric.enable_trace();
            }
            self.engine_trace = Some(TraceRecorder::with_default_capacity());
        }
    }

    /// Detaches everything the run collected into an [`ObsReport`]. Call
    /// after [`Gpu::run`] / [`Gpu::run_event`] and before
    /// [`Gpu::into_result`]; none of the collected state feeds back into
    /// the simulation result.
    pub fn take_obs(&mut self) -> ObsReport {
        let mut report = ObsReport::new(self.obs);
        report.tenants = self.tenant_names.clone();
        report.profile = std::mem::take(&mut self.profiler);
        if !self.obs.metrics_enabled() {
            return report;
        }
        for sm in &mut self.sms {
            let sm = sm.get_mut();
            if let Some(mut trace) = sm.take_trace() {
                report.dropped_events += trace.dropped();
                report.events.extend(trace.take());
            }
            if let Some(obs) = sm.take_port_obs() {
                Self::absorb_partition_obs(&mut report, *obs);
            }
        }
        if let Some(shared) = &self.shared {
            for obs in shared.collect_obs() {
                Self::absorb_partition_obs(&mut report, *obs);
            }
        }
        if let Some(fabric) = &mut self.fabric {
            if let Some(mut trace) = fabric.take_trace() {
                report.dropped_events += trace.dropped();
                report.events.extend(trace.take());
            }
        }
        if let Some(mut trace) = self.engine_trace.take() {
            report.dropped_events += trace.dropped();
            report.events.extend(trace.take());
        }
        // Engine-internal counters: how much of the run the event engine
        // skipped in closed form. Always 0 under the epoch backend; the
        // `engine/` prefix keeps them out of the canonical backend-invariant
        // metrics export (full export only).
        report.metrics.counter_add("engine/skipped-boundaries", None, self.skipped_boundaries);
        report.metrics.counter_add("engine/sleeps", None, self.sleeps);
        self.dispatch_obs(&mut report);
        report
    }

    /// Folds one bank's (or private partition's) sink into the report: its
    /// trace ring and its per-tenant service-latency histograms.
    fn absorb_partition_obs(report: &mut ObsReport, obs: PartitionObs) {
        if let Some(mut trace) = obs.trace {
            report.dropped_events += trace.dropped();
            report.events.extend(trace.take());
        }
        for (tenant, hist) in obs.latency.iter().enumerate() {
            if hist.count() > 0 {
                report.metrics.histogram_merge("mem-latency", Some(tenant as u32), hist);
            }
        }
    }

    /// Synthesises dispatcher-track trace instants and registry metrics from
    /// the decision log. Purely derived from sim-time state, so the output
    /// is identical across timing backends and thread counts.
    fn dispatch_obs(&self, report: &mut ObsReport) {
        let log = &self.dispatch_log;
        if log.is_empty() {
            return;
        }
        let trace_on = self.obs.trace_enabled();
        report.metrics.counter_add("dispatch-decisions", None, log.len() as u64);
        for (t, series) in log.all_l2_hit_rate_series().iter().enumerate() {
            for &(cycle, rate) in series {
                report.metrics.gauge_push("l2-hit-rate", Some(t as u32), cycle, rate);
            }
        }
        for d in &log.decisions {
            for action in &d.actions {
                match action {
                    crate::stats::DispatchAction::Admit { tenant } => {
                        report.metrics.counter_add("dispatch-admits", Some(*tenant), 1);
                        if trace_on {
                            report.events.push(TraceEvent::instant(
                                Track::Dispatcher,
                                "admit",
                                d.cycle,
                                Some(*tenant),
                            ));
                            report.events.push(TraceEvent::instant(
                                Track::Tenant(*tenant),
                                "admit",
                                d.cycle,
                                Some(*tenant),
                            ));
                        }
                    }
                    crate::stats::DispatchAction::Place { allowed_sms } => {
                        report.metrics.counter_add("dispatch-places", None, 1);
                        if trace_on {
                            report.events.push(
                                TraceEvent::instant(Track::Dispatcher, "place", d.cycle, None)
                                    .with_arg(allowed_sms.len() as u64),
                            );
                            for (t, &n) in allowed_sms.iter().enumerate() {
                                report.events.push(
                                    TraceEvent::instant(
                                        Track::Tenant(t as TenantId),
                                        "place",
                                        d.cycle,
                                        Some(t as TenantId),
                                    )
                                    .with_arg(n as u64),
                                );
                            }
                        }
                    }
                    crate::stats::DispatchAction::Throttle { tenant, victim, allowed_sms } => {
                        report.metrics.counter_add("dispatch-throttles", Some(*tenant), 1);
                        if trace_on {
                            report.events.push(
                                TraceEvent::instant(
                                    Track::Dispatcher,
                                    "throttle",
                                    d.cycle,
                                    Some(*tenant),
                                )
                                .with_arg(*victim as u64),
                            );
                            report.events.push(
                                TraceEvent::instant(
                                    Track::Tenant(*tenant),
                                    "throttle",
                                    d.cycle,
                                    Some(*tenant),
                                )
                                .with_arg(*allowed_sms as u64),
                            );
                        }
                    }
                    crate::stats::DispatchAction::Restore { tenant, allowed_sms } => {
                        report.metrics.counter_add("dispatch-restores", Some(*tenant), 1);
                        if trace_on {
                            report.events.push(TraceEvent::instant(
                                Track::Dispatcher,
                                "restore",
                                d.cycle,
                                Some(*tenant),
                            ));
                            report.events.push(
                                TraceEvent::instant(
                                    Track::Tenant(*tenant),
                                    "restore",
                                    d.cycle,
                                    Some(*tenant),
                                )
                                .with_arg(*allowed_sms as u64),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Number of SMs on this chip.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// The shared chip backend (`None` for a single-SM chip, whose SM owns a
    /// private partition instead).
    pub fn shared_memory_system(&self) -> Option<&BankedMemorySystem> {
        self.shared.as_deref()
    }

    /// Runs the chip until every SM finished its CTAs or hit a cap. Returns
    /// the chip cycle count (the slowest SM's clock).
    pub fn run(&mut self) -> Cycle {
        let dynamic = self.adaptive.is_some() || !self.deferred.is_empty();
        if self.sms.len() == 1 && !dynamic {
            // Single SM, fully static work: the legacy serial loop,
            // bit-identical to `Sm::run`.
            self.profiler.enter("sm-run");
            self.cycle = self.sms[0].get_mut().run();
            self.profiler.exit();
            return self.cycle;
        }
        self.run_epochs();
        self.cycle
    }

    /// Runs the chip under the event-driven timing core. Produces results
    /// bit-identical to [`Gpu::run`] (same epoch-boundary protocol, same
    /// request and reply ordering), but each SM fast-forwards over provably
    /// idle stretches instead of stepping them cycle by cycle, and the chip
    /// advances single-threaded in deterministic next-event order — so the
    /// outcome cannot depend on thread count. Returns the chip cycle count.
    pub fn run_event(&mut self) -> Cycle {
        self.backend = crate::event::BackendKind::Event.label();
        let dynamic = self.adaptive.is_some() || !self.deferred.is_empty();
        if self.sms.len() == 1 && !dynamic {
            // Single SM, fully static work: the serial event loop,
            // bit-identical to `Sm::run`.
            self.profiler.enter("sm-run");
            self.cycle = self.sms[0].get_mut().run_event();
            self.profiler.exit();
            return self.cycle;
        }
        self.run_epochs_event();
        self.cycle
    }

    /// Event-driven replica of [`Gpu::run_epochs`]: the same boundary
    /// sequence (serve the held batch → advance SMs to the boundary →
    /// release and deliver replies → collect the next batch → dispatch),
    /// with identical boundary cycles, so every request is served at exactly
    /// the cycle the epoch engine would serve it. Three mechanisms keep the
    /// loop off everything that is provably idle, without changing a single
    /// observable cycle:
    ///
    /// - **Per-SM parking.** Only SMs whose wakeup hint is due at the current
    ///   boundary are popped and advanced ([`TimeQueue::pop_due`]); the rest
    ///   stay *parked* with a frozen clock. A parked stretch is pure idle by
    ///   construction (the hint is [`Sm::next_event_time`], and replies /
    ///   dealt work pull hints forward), so the owed idle settle — scheduler
    ///   decay, idle-cycle accounting — is replayed in one closed-form
    ///   [`Sm::run_epoch_event`] call when the SM next wakes, exactly as
    ///   `on_idle_cycles` composes per-SM. Done and capped SMs park at
    ///   `Cycle::MAX`.
    /// - **Whole-chip sleep.** When every hint, arrival and delivery lies
    ///   beyond the next boundary and nothing is buffered anywhere, whole
    ///   boundaries are skipped in closed form: the adaptive dispatcher's
    ///   hysteresis windows are bulk-replayed per skipped boundary against
    ///   frozen monitor signals (identical to what the epoch oracle computes,
    ///   since no SM or bank state moves while the chip sleeps). The skipped
    ///   count surfaces as the `engine/skipped-boundaries` metric.
    /// - **Event-granular memory service.** Each boundary's batch runs
    ///   through [`Gpu::serve_batch_event`]: fabric-link occupancy charged at
    ///   each request's true arrival time, banks popping their next due
    ///   request from per-bank FIFOs — same `(arrive, SM, seq)` global order
    ///   as the batch-major walk, driven by a [`TimeQueue`].
    fn run_epochs_event(&mut self) {
        let epoch = self.config.effective_epoch_cycles();
        let line_size = self.config.l1d.line_size;
        let xbar_latency = self.config.interconnect_latency;
        let reorder_window = self.config.reorder_window;
        let shared = self.shared.clone();
        let shared = shared.as_deref();
        let num_sms = self.sms.len();
        let num_tenants = self.tenant_names.len();
        let max_cycles = self.config.max_cycles;
        let sms = &self.sms;
        let adaptive = &mut self.adaptive;
        let deferred = &mut self.deferred;
        let fabric = &mut self.fabric;
        let window = &mut self.window;
        let reply_window = &mut self.reply_window;
        let profiler = &mut self.profiler;
        let engine_trace = &mut self.engine_trace;

        let mut timeq = TimeQueue::new(num_sms);
        for unit in 0..num_sms {
            timeq.schedule(unit, 0);
        }
        let mut pump = ServePump::new(shared.map_or(0, |s| s.num_banks()));

        // Cycle-0 boundary: admit arrival-0 streams into the adaptive
        // dispatcher and deal its initial (probe) CTAs.
        Self::dispatch_boundary_event(
            sms,
            shared,
            adaptive,
            deferred,
            num_tenants,
            0,
            &mut timeq,
            0.0,
        );

        // Same stall guard as the epoch engine (see `run_epochs`).
        let stall_limit = epoch
            * crate::dispatch::DECISION_EPOCHS
            * (crate::dispatch::MAX_PROBE_WINDOWS + 2 * crate::dispatch::DECISION_EPOCHS);

        let mut now: Cycle = 0;
        let mut last_progress: Cycle = 0;
        let mut batch: Vec<(usize, MemRequest)> = Vec::new();
        // Scratch for one boundary's advancement order (refilled each epoch).
        let mut order: Vec<usize> = Vec::with_capacity(num_sms);
        // DRAM-utilisation snapshot the current boundary's advancing SMs
        // read — the value the oracle's deliver pass wrote at the *previous*
        // boundary. `flush_util` lags it by one boundary: the snapshot that
        // was in effect during the last executed boundary, i.e. what a parked
        // SM's final oracle advancement would have observed.
        let mut boundary_util = 0.0f64;
        let mut flush_util = 0.0f64;
        let mut skipped_boundaries: u64 = 0;
        let mut sleeps: u64 = 0;
        loop {
            let alive = sms.iter().any(|s| {
                let s = s.lock();
                !s.is_done() && !s.hit_cap()
            });
            let mut proceed = alive;
            if alive {
                last_progress = now;
                // Whole-chip sleep: skip boundaries where provably nothing
                // happens — no SM due, nothing buffered in the request/reply
                // pipeline, no arrival admissible, no admitted work to feed.
                // Each skipped boundary is one the oracle would have executed
                // as a pure no-op apart from the dispatcher's hysteresis
                // clock, which is replayed here against frozen signals.
                if batch.is_empty()
                    && window.is_empty()
                    && reply_window.is_empty()
                    && adaptive.as_ref().is_none_or(|a| !a.has_admitted_pending())
                {
                    let next_sm = timeq.peek_time().unwrap_or(Cycle::MAX);
                    let next_deferred = deferred.first().map_or(Cycle::MAX, |b| b.arrival);
                    let next_adaptive =
                        adaptive.as_ref().and_then(|a| a.next_arrival()).unwrap_or(Cycle::MAX);
                    let next_due = next_sm.min(next_deferred).min(next_adaptive);
                    if next_due > now + epoch && max_cycles.is_none_or(|m| now < m) {
                        profiler.enter("sleep");
                        // Signals and free slots are frozen while the chip
                        // sleeps (no SM executes, no bank serves), so one
                        // snapshot feeds every replayed boundary.
                        let frozen = adaptive.as_ref().map(|_| {
                            let signals = Self::tenant_signals(sms, shared, num_tenants);
                            let free: Vec<usize> =
                                sms.iter().map(|s| s.lock().free_warp_slots()).collect();
                            (signals, free)
                        });
                        let mut slept: u64 = 0;
                        while next_due > now + epoch && max_cycles.is_none_or(|m| now < m) {
                            now += epoch;
                            slept += 1;
                            if let (Some(dispatcher), Some((signals, free))) =
                                (adaptive.as_mut(), frozen.as_ref())
                            {
                                let dealt = dispatcher.on_boundary(now, signals, free);
                                debug_assert!(
                                    dealt.is_empty(),
                                    "sleeping chip must not receive work"
                                );
                            }
                        }
                        skipped_boundaries += slept;
                        sleeps += 1;
                        last_progress = now;
                        if let Some(shared) = shared {
                            // The oracle's deliver pass refreshed the
                            // snapshot at every slept boundary; only the last
                            // two values can still be observed (bytes are
                            // frozen, so both are computable after the fact).
                            flush_util = shared.dram_bandwidth_utilization((now - epoch).max(1));
                            boundary_util = shared.dram_bandwidth_utilization(now.max(1));
                        }
                        if let Some(trace) = engine_trace.as_mut() {
                            trace.record(
                                TraceEvent::instant(Track::Engine, "sleep", now, None)
                                    .with_arg(slept)
                                    .engine(),
                            );
                        }
                        profiler.exit();
                    }
                }
            } else {
                let undealt =
                    !deferred.is_empty() || adaptive.as_ref().is_some_and(|a| a.has_work());
                if undealt {
                    proceed = now - last_progress < stall_limit;
                    let next_arrival = deferred
                        .iter()
                        .map(|b| b.arrival)
                        .chain(adaptive.as_ref().and_then(|a| a.next_arrival()))
                        .min();
                    if let Some(arrival) = next_arrival {
                        if adaptive.as_ref().is_none_or(|a| !a.has_admitted_pending())
                            && arrival > now + epoch
                        {
                            now = arrival.div_ceil(epoch) * epoch - epoch;
                            last_progress = last_progress.max(now);
                            proceed = true;
                        }
                    }
                }
            }
            if max_cycles.is_some_and(|m| now >= m) {
                proceed = false;
            }
            if !proceed {
                break;
            }
            now += epoch;
            // Serve the previous boundary's batch. The halved epoch clamp
            // guarantees every completion lands strictly after `now`, the
            // cycle it may be delivered at — exactly as in the epoch engine,
            // which overlaps this service with the SM epoch.
            let completions = Self::serve_batch_event(
                shared,
                fabric.as_mut(),
                std::mem::take(&mut batch),
                line_size,
                &mut pump,
                profiler,
            );
            // Advance the SMs whose next event is due, earliest first; the
            // rest stay parked with frozen clocks and owe their idle settle
            // to whichever later boundary wakes them.
            profiler.enter("pop-advance");
            order.clear();
            while let Some((_, unit)) = timeq.pop_due(now) {
                if let Some(trace) = engine_trace.as_mut() {
                    trace.record(
                        TraceEvent::instant(Track::Engine, "pop", now, None)
                            .with_arg(unit as u64)
                            .engine(),
                    );
                }
                order.push(unit);
            }
            for &unit in &order {
                let mut sm = sms[unit].lock();
                if !sm.is_done() && !sm.hit_cap() {
                    if shared.is_some() {
                        sm.set_dram_utilization(boundary_util);
                    }
                    sm.run_epoch_event(now);
                }
                let hint = if sm.is_done() || sm.hit_cap() {
                    Cycle::MAX
                } else {
                    sm.next_event_time().unwrap_or(now)
                };
                drop(sm);
                timeq.schedule(unit, hint);
            }
            profiler.exit();
            let responses = Self::release_replies(
                fabric.as_mut(),
                reply_window,
                completions,
                now + epoch,
                reorder_window,
                line_size,
                profiler,
            );
            profiler.enter("deliver");
            // A delivered reply wakes its SM at the response cycle.
            for r in &responses {
                sms[r.sm].lock().deliver(r.done, r.event);
                timeq.schedule_min(r.sm, r.done);
            }
            // The snapshot the *next* boundary's advancing SMs will read —
            // computed now (after this boundary's serve mutated the bank
            // counters), applied per-SM at wakeup instead of broadcast to
            // every SM every boundary.
            let pending_util = shared.map(|s| s.dram_bandwidth_utilization(now.max(1)));
            profiler.exit();
            profiler.enter("collect");
            batch =
                Self::collect_batch_from(sms, &order, window, now, xbar_latency, reorder_window);
            profiler.exit();
            profiler.enter("dispatch");
            let dealt = Self::dispatch_boundary_event(
                sms,
                shared,
                adaptive,
                deferred,
                num_tenants,
                now,
                &mut timeq,
                boundary_util,
            );
            profiler.exit();
            if dealt {
                last_progress = now;
            }
            flush_util = boundary_util;
            if let Some(util) = pending_util {
                boundary_util = util;
            }
        }
        // Parked SMs still owe their idle settle up to the final executed
        // boundary (the oracle advances every live SM to every boundary),
        // observing the snapshot that was in effect during that boundary.
        // This must happen before the flush serves below: flush deliveries
        // are not visible to any boundary-time advancement.
        for sm in sms.iter() {
            let mut sm = sm.lock();
            if !sm.is_done() && !sm.hit_cap() && sm.cycle() < now {
                if shared.is_some() {
                    sm.set_dram_utilization(flush_util);
                }
                sm.run_epoch_event(now);
            }
        }
        // Flush, exactly as the epoch engine does after its loop exits.
        let mut completions = Self::serve_batch_event(
            shared,
            fabric.as_mut(),
            std::mem::take(&mut batch),
            line_size,
            &mut pump,
            profiler,
        );
        let rest = Self::collect_batch(sms, window, Cycle::MAX - xbar_latency, xbar_latency, 0);
        completions.extend(Self::serve_batch_event(
            shared,
            fabric.as_mut(),
            rest,
            line_size,
            &mut pump,
            profiler,
        ));
        let responses = Self::release_replies(
            fabric.as_mut(),
            reply_window,
            completions,
            Cycle::MAX,
            0,
            line_size,
            profiler,
        );
        Self::deliver_responses(sms, shared, &responses, now);

        if let Some(dispatcher) = &mut self.adaptive {
            self.dispatch_log = dispatcher.take_log();
        }
        self.skipped_boundaries = skipped_boundaries;
        self.sleeps = sleeps;
        self.cycle = 0;
        for sm in &mut self.sms {
            let sm = sm.get_mut();
            sm.finalize_stats();
            self.cycle = self.cycle.max(sm.cycle());
        }
    }

    fn run_epochs(&mut self) {
        let epoch = self.config.effective_epoch_cycles();
        let line_size = self.config.l1d.line_size;
        let xbar_latency = self.config.interconnect_latency;
        let service_threads = self.config.effective_service_threads();
        let reorder_window = self.config.reorder_window;
        let shared = self.shared.clone();
        let shared = shared.as_deref();
        let num_sms = self.sms.len();
        let num_tenants = self.tenant_names.len();
        let max_cycles = self.config.max_cycles;
        let stop = AtomicBool::new(false);
        let epoch_end = AtomicU64::new(0);
        let start_barrier = Barrier::new(num_sms + 1);
        let end_barrier = Barrier::new(num_sms + 1);
        let sms = &self.sms;
        let adaptive = &mut self.adaptive;
        let deferred = &mut self.deferred;
        let fabric = &mut self.fabric;
        let window = &mut self.window;
        let reply_window = &mut self.reply_window;
        // Only the barrier (chip) thread touches the profiler; SM workers
        // never profile — wall clocks are aggregated per phase, not per SM.
        let profiler = &mut self.profiler;

        std::thread::scope(|scope| {
            for sm in sms {
                let (stop, epoch_end) = (&stop, &epoch_end);
                let (start_barrier, end_barrier) = (&start_barrier, &end_barrier);
                scope.spawn(move || loop {
                    start_barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let until = epoch_end.load(Ordering::Acquire);
                    {
                        let mut sm = sm.lock();
                        if !sm.is_done() && !sm.hit_cap() {
                            sm.run_epoch(until);
                        }
                    }
                    end_barrier.wait();
                });
            }

            // Cycle-0 boundary: admit arrival-0 streams into the adaptive
            // dispatcher and deal its initial (probe) CTAs.
            Self::dispatch_boundary(sms, shared, adaptive, deferred, num_tenants, 0);

            // How long the chip may sit idle (no SM runnable, nothing newly
            // dealt) while the dispatcher still holds work before the run is
            // declared stuck: long enough for every probe give-up to fire.
            let stall_limit = epoch
                * crate::dispatch::DECISION_EPOCHS
                * (crate::dispatch::MAX_PROBE_WINDOWS + 2 * crate::dispatch::DECISION_EPOCHS);

            let mut now: Cycle = 0;
            let mut last_progress: Cycle = 0;
            // The batch drained at the previous boundary, already merged with
            // the reorder window and sorted — served while the next epoch's
            // parallel phase runs.
            let mut batch: Vec<(usize, MemRequest)> = Vec::new();
            loop {
                let alive = sms.iter().any(|s| {
                    let s = s.lock();
                    !s.is_done() && !s.hit_cap()
                });
                let mut proceed = alive;
                if alive {
                    last_progress = now;
                } else {
                    let undealt =
                        !deferred.is_empty() || adaptive.as_ref().is_some_and(|a| a.has_work());
                    if undealt {
                        // The chip is idle but work remains: keep epochs
                        // ticking — a future arrival, a CTA retirement or a
                        // probe give-up will release it. Jump ahead when a
                        // far-off arrival is the only thing being awaited.
                        proceed = now - last_progress < stall_limit;
                        let next_arrival = deferred
                            .iter()
                            .map(|b| b.arrival)
                            .chain(adaptive.as_ref().and_then(|a| a.next_arrival()))
                            .min();
                        if let Some(arrival) = next_arrival {
                            // Fast-forward only when nothing *admitted* is
                            // pending — admitted work needs the intermediate
                            // boundaries (retire checks, probe give-ups) the
                            // jump would skip; a pure future arrival does not.
                            if adaptive.as_ref().is_none_or(|a| !a.has_admitted_pending())
                                && arrival > now + epoch
                            {
                                // First epoch boundary at or after the
                                // arrival, minus the epoch added below.
                                now = arrival.div_ceil(epoch) * epoch - epoch;
                                last_progress = last_progress.max(now);
                                proceed = true;
                            }
                        }
                    }
                }
                if max_cycles.is_some_and(|m| now >= m) {
                    proceed = false;
                }
                if !proceed {
                    break;
                }
                now += epoch;
                epoch_end.store(now, Ordering::Release);
                start_barrier.wait();
                // Overlap: serve the previous boundary's batch while the SMs
                // run this epoch against their own local state. The halved
                // epoch clamp guarantees every completion computed here lands
                // strictly after `now`, the cycle it may be delivered at.
                let completions = Self::serve_batch(
                    shared,
                    fabric.as_mut(),
                    std::mem::take(&mut batch),
                    line_size,
                    service_threads,
                    profiler,
                );
                // Whatever the SM epochs still owe beyond the service time is
                // the un-overlapped remainder of the parallel phase.
                profiler.enter("sm-wait");
                end_barrier.wait();
                profiler.exit();
                // Release replies whose completion no later-served batch can
                // precede (done ≤ now + epoch: the batch drained at this very
                // boundary completes strictly after that), pass them through
                // the reply fabric in global completion order, deliver.
                let responses = Self::release_replies(
                    fabric.as_mut(),
                    reply_window,
                    completions,
                    now + epoch,
                    reorder_window,
                    line_size,
                    profiler,
                );
                profiler.enter("deliver");
                Self::deliver_responses(sms, shared, &responses, now);
                profiler.exit();
                profiler.enter("collect");
                batch = Self::collect_batch(sms, window, now, xbar_latency, reorder_window);
                profiler.exit();
                profiler.enter("dispatch");
                let dealt =
                    Self::dispatch_boundary(sms, shared, adaptive, deferred, num_tenants, now);
                profiler.exit();
                if dealt {
                    last_progress = now;
                }
            }
            stop.store(true, Ordering::Release);
            start_barrier.wait();
            // Flush: the loop exits with one batch still unserved (plus, after
            // a cap, possibly held window entries and last-epoch buffers).
            // Serve everything so the shared backend's counters cover every
            // request the SMs injected. Reads can only remain here after a
            // cap — a waiting warp keeps its SM alive — so these deliveries
            // land in event queues that are never polled again.
            let mut completions = Self::serve_batch(
                shared,
                fabric.as_mut(),
                std::mem::take(&mut batch),
                line_size,
                service_threads,
                profiler,
            );
            let rest = Self::collect_batch(sms, window, Cycle::MAX - xbar_latency, xbar_latency, 0);
            completions.extend(Self::serve_batch(
                shared,
                fabric.as_mut(),
                rest,
                line_size,
                service_threads,
                profiler,
            ));
            let responses = Self::release_replies(
                fabric.as_mut(),
                reply_window,
                completions,
                Cycle::MAX,
                0,
                line_size,
                profiler,
            );
            Self::deliver_responses(sms, shared, &responses, now);
        });

        if let Some(dispatcher) = &mut self.adaptive {
            self.dispatch_log = dispatcher.take_log();
        }

        // The chip clock is the slowest SM's clock, not the epoch-rounded
        // loop counter (an SM finishing mid-epoch stops its clock there).
        self.cycle = 0;
        for sm in &mut self.sms {
            let sm = sm.get_mut();
            sm.finalize_stats();
            self.cycle = self.cycle.max(sm.cycle());
        }
    }

    /// Drains every SM's buffered requests into the reorder window, sorts the
    /// window by `(arrive, SM, seq)`, and splits off the service batch:
    /// requests arriving at or before the merge horizon
    /// (`now + interconnect latency`) can no longer be preceded by any future
    /// request (the next epoch issues at cycle ≥ `now`, so its arrivals are
    /// strictly later), later arrivals stay held — bounded by `window_limit`,
    /// with the earliest overflow served batch-major as before.
    fn collect_batch(
        sms: &[Mutex<Sm>],
        window: &mut Vec<(usize, MemRequest)>,
        now: Cycle,
        xbar_latency: Cycle,
        window_limit: usize,
    ) -> Vec<(usize, MemRequest)> {
        for (i, sm) in sms.iter().enumerate() {
            let mut sm = sm.lock();
            window.extend(sm.drain_requests().into_iter().map(|r| (i, r)));
        }
        window.sort_by_key(|&(sm, r)| (r.arrive, sm, r.seq));
        let horizon = now.saturating_add(xbar_latency);
        let mut split = window.partition_point(|&(_, r)| r.arrive <= horizon);
        split += (window.len() - split).saturating_sub(window_limit);
        window.drain(..split).collect()
    }

    /// [`Gpu::collect_batch`] restricted to the SMs that advanced this
    /// boundary. A parked SM cannot hold buffered requests — its buffer was
    /// drained at the boundary it last executed (it is in that boundary's
    /// advancement set by construction) and pure idle issues nothing — so
    /// skipping it drains exactly what the full walk would.
    fn collect_batch_from(
        sms: &[Mutex<Sm>],
        advanced: &[usize],
        window: &mut Vec<(usize, MemRequest)>,
        now: Cycle,
        xbar_latency: Cycle,
        window_limit: usize,
    ) -> Vec<(usize, MemRequest)> {
        for &i in advanced {
            let mut sm = sms[i].lock();
            window.extend(sm.drain_requests().into_iter().map(|r| (i, r)));
        }
        window.sort_by_key(|&(sm, r)| (r.arrive, sm, r.seq));
        let horizon = now.saturating_add(xbar_latency);
        let mut split = window.partition_point(|&(_, r)| r.arrive <= horizon);
        split += (window.len() - split).saturating_sub(window_limit);
        window.drain(..split).collect()
    }

    /// Runs one batch through the service pipeline: the shared request fabric
    /// (in batch order), the bank shards (in parallel where the batch is
    /// large enough to pay for it), and the shared reply fabric (in
    /// completion order). Returns the raw read completions (writes produce no
    /// reply) for the reply reorder window. A single-SM chip (private
    /// synchronous port, `shared == None`, no fabric) has nothing to serve.
    fn serve_batch(
        shared: Option<&BankedMemorySystem>,
        fabric: Option<&mut CrossbarFabric>,
        batch: Vec<(usize, MemRequest)>,
        line_size: u64,
        service_threads: usize,
        profiler: &mut PhaseProfiler,
    ) -> Vec<RawCompletion> {
        let (Some(shared), Some(fabric)) = (shared, fabric) else { return Vec::new() };
        if batch.is_empty() {
            return Vec::new();
        }
        // Request direction: every request charges the chip-wide budget, in
        // deterministic batch order (non-decreasing arrival).
        profiler.enter("fabric-request");
        let entries: Vec<(usize, MemRequest, Cycle)> = batch
            .into_iter()
            .map(|(sm, r)| {
                let at_l2 = fabric.request_transfer(line_size, r.arrive, r.tenant);
                (sm, r, at_l2)
            })
            .collect();
        profiler.exit();
        profiler.enter("bank-service");
        // Shard by bank. Shards are disjoint and each preserves batch order,
        // so per-bank service is identical no matter which worker runs it.
        let mut shards: Vec<(usize, Vec<usize>)> =
            (0..shared.num_banks()).map(|b| (b, Vec::new())).collect();
        for (i, (_, r, _)) in entries.iter().enumerate() {
            shards[shared.bank_of(r.block)].1.push(i);
        }
        shards.retain(|(_, s)| !s.is_empty());
        let serve_shard = |bank: usize, shard: &[usize]| -> Vec<(usize, Cycle)> {
            shared.with_bank(bank, |partition| {
                shard
                    .iter()
                    .map(|&i| {
                        let (_, r, at_l2) = &entries[i];
                        let done = if r.bypass {
                            partition.access_bypass_tagged(r.block, r.tenant, *at_l2)
                        } else {
                            partition.access_tagged(r.block, r.wid, r.tenant, r.is_write, *at_l2)
                        };
                        (i, done)
                    })
                    .collect()
            })
        };
        let mut done_at = vec![0 as Cycle; entries.len()];
        if service_threads <= 1 || shards.len() <= 1 || entries.len() < PARALLEL_SERVICE_MIN_BATCH {
            // Small batches: serve request-at-a-time through the
            // event-granular bank entry point (identical per-bank order and
            // counters; the shard machinery only pays off with workers).
            for (i, (_, r, at_l2)) in entries.iter().enumerate() {
                done_at[i] =
                    shared.serve_event(r.block, r.wid, r.tenant, r.is_write, r.bypass, *at_l2);
            }
        } else {
            let next = AtomicUsize::new(0);
            let served: Vec<Vec<(usize, Cycle)>> = std::thread::scope(|scope| {
                let workers = service_threads.min(shards.len());
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (next, shards, serve_shard) = (&next, &shards, &serve_shard);
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                let Some((bank, shard)) = shards.get(k) else { break };
                                out.extend(serve_shard(*bank, shard));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("service worker panicked")).collect()
            });
            for list in served {
                for (i, done) in list {
                    done_at[i] = done;
                }
            }
        }
        profiler.exit();
        // Reads produce replies; they enter the reply reorder window rather
        // than the fabric directly, so one batch's slow DRAM stragglers never
        // charge phantom queueing against the next batch's fast completions.
        entries
            .iter()
            .enumerate()
            .filter(|(_, (_, r, _))| !r.is_write)
            .map(|(i, (sm, r, _))| RawCompletion {
                sm: *sm,
                seq: r.seq,
                done: done_at[i],
                tenant: r.tenant,
                event: r.event,
            })
            .collect()
    }

    /// Event-granular replica of [`Gpu::serve_batch`]: the same fabric
    /// charges and bank accesses at the same cycles, but driven through a
    /// [`TimeQueue`] instead of a batch-major walk. Unit 0 (the request
    /// fabric) wakes at each request's true port-arrival cycle and charges
    /// the chip-wide link budget in batch order (arrivals are non-decreasing,
    /// ties break fabric-before-bank); the charged request joins its owning
    /// bank's FIFO and the bank unit wakes at the head request's
    /// fabric-delivery cycle to serve it. Per-bank service order equals
    /// charge order equals batch order, so every counter and completion cycle
    /// is identical to the shard walk — request at a time, no threads.
    fn serve_batch_event(
        shared: Option<&BankedMemorySystem>,
        fabric: Option<&mut CrossbarFabric>,
        batch: Vec<(usize, MemRequest)>,
        line_size: u64,
        pump: &mut ServePump,
        profiler: &mut PhaseProfiler,
    ) -> Vec<RawCompletion> {
        let (Some(shared), Some(fabric)) = (shared, fabric) else { return Vec::new() };
        if batch.is_empty() {
            return Vec::new();
        }
        profiler.enter("serve-events");
        let n = batch.len();
        let mut at_l2 = vec![0 as Cycle; n];
        let mut done_at = vec![0 as Cycle; n];
        let timeq = &mut pump.timeq;
        let fifos = &mut pump.fifos;
        debug_assert!(fifos.iter().all(|f| f.is_empty()), "pump must drain between batches");
        let mut next_req = 0usize;
        timeq.schedule(0, batch[0].1.arrive);
        while let Some((_, unit)) = timeq.pop_next() {
            if unit == 0 {
                // Fabric: charge the next request of the batch at its arrival.
                let r = &batch[next_req].1;
                let t = fabric.request_transfer(line_size, r.arrive, r.tenant);
                at_l2[next_req] = t;
                let bank = shared.bank_of(r.block);
                if fifos[bank].is_empty() {
                    timeq.schedule(1 + bank, t);
                }
                fifos[bank].push_back(next_req);
                next_req += 1;
                if next_req < n {
                    timeq.schedule(0, batch[next_req].1.arrive);
                }
            } else {
                // Bank: serve its FIFO head at the head's delivery instant.
                let bank = unit - 1;
                let i = fifos[bank].pop_front().expect("bank event without a queued request");
                let r = &batch[i].1;
                done_at[i] = shared
                    .serve_event_at(bank, r.block, r.wid, r.tenant, r.is_write, r.bypass, at_l2[i]);
                if let Some(&next) = fifos[bank].front() {
                    timeq.schedule(1 + bank, at_l2[next]);
                }
            }
        }
        profiler.exit();
        // Reads produce replies; they enter the reply reorder window rather
        // than the fabric directly (see `serve_batch`).
        batch
            .iter()
            .enumerate()
            .filter(|(_, (_, r))| !r.is_write)
            .map(|(i, (sm, r))| RawCompletion {
                sm: *sm,
                seq: r.seq,
                done: done_at[i],
                tenant: r.tenant,
                event: r.event,
            })
            .collect()
    }

    /// Merges freshly served completions into the reply reorder window and
    /// releases every reply completing at or before `horizon` — replies no
    /// later-served batch can precede, so the reply fabric sees a globally
    /// non-decreasing completion stream across epochs. Released replies
    /// charge the chip-wide reply budget in `(completion, SM, seq)` order;
    /// holds beyond `window_limit` fall back to batch-major release (earliest
    /// first — still safely after the delivery boundary).
    fn release_replies(
        fabric: Option<&mut CrossbarFabric>,
        reply_window: &mut Vec<RawCompletion>,
        fresh: Vec<RawCompletion>,
        horizon: Cycle,
        window_limit: usize,
        line_size: u64,
        profiler: &mut PhaseProfiler,
    ) -> Vec<ReadyResponse> {
        let Some(fabric) = fabric else { return Vec::new() };
        reply_window.extend(fresh);
        if reply_window.is_empty() {
            return Vec::new();
        }
        profiler.enter("fabric-reply");
        reply_window.sort_by_key(|c| (c.done, c.sm, c.seq));
        let mut split = reply_window.partition_point(|c| c.done <= horizon);
        split += (reply_window.len() - split).saturating_sub(window_limit);
        let out = reply_window
            .drain(..split)
            .filter_map(|c| {
                let done = fabric.reply_transfer(line_size, c.done, c.tenant);
                c.event.map(|event| ReadyResponse { sm: c.sm, done, event })
            })
            .collect();
        profiler.exit();
        out
    }

    /// Delivers served read responses into their SMs' event queues and
    /// refreshes every SM's DRAM-utilisation snapshot for the next epoch.
    fn deliver_responses(
        sms: &[Mutex<Sm>],
        shared: Option<&BankedMemorySystem>,
        responses: &[ReadyResponse],
        now: Cycle,
    ) {
        let Some(shared) = shared else { return };
        for r in responses {
            sms[r.sm].lock().deliver(r.done, r.event);
        }
        let util = shared.dram_bandwidth_utilization(now.max(1));
        for sm in sms {
            sm.lock().set_dram_utilization(util);
        }
    }

    /// Epoch-boundary dispatch: appends deferred arrival batches whose cycle
    /// has come and lets the adaptive dispatcher admit, decide and feed.
    /// Returns whether any work reached an SM.
    fn dispatch_boundary(
        sms: &[Mutex<Sm>],
        shared: Option<&BankedMemorySystem>,
        adaptive: &mut Option<AdaptiveDispatcher>,
        deferred: &mut Vec<DeferredBatch>,
        num_tenants: usize,
        now: Cycle,
    ) -> bool {
        let mut progressed = false;
        while deferred.first().is_some_and(|b| b.arrival <= now) {
            let batch = deferred.remove(0);
            for (sm, work) in batch.per_sm.into_iter().enumerate() {
                if !work.is_empty() {
                    sms[sm].lock().push_work(work, now);
                    progressed = true;
                }
            }
        }
        if let Some(dispatcher) = adaptive {
            let signals = Self::tenant_signals(sms, shared, num_tenants);
            let free: Vec<usize> = sms.iter().map(|s| s.lock().free_warp_slots()).collect();
            for (sm, work) in dispatcher.on_boundary(now, &signals, &free) {
                sms[sm].lock().push_work(work, now);
                progressed = true;
            }
        }
        progressed
    }

    /// [`Gpu::dispatch_boundary`] for the parking event engine: identical
    /// admission/decision/feed protocol, but an SM receiving work while
    /// parked is first caught up to the boundary (its lag is a provably pure
    /// idle span — the oracle advanced it to every boundary — so one
    /// closed-form settle against the boundary snapshot replays exactly what
    /// per-boundary stepping would have done), and every SM that received
    /// work has its wakeup hint pulled forward to the boundary.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_boundary_event(
        sms: &[Mutex<Sm>],
        shared: Option<&BankedMemorySystem>,
        adaptive: &mut Option<AdaptiveDispatcher>,
        deferred: &mut Vec<DeferredBatch>,
        num_tenants: usize,
        now: Cycle,
        timeq: &mut TimeQueue,
        boundary_util: f64,
    ) -> bool {
        let has_shared = shared.is_some();
        let mut progressed = false;
        while deferred.first().is_some_and(|b| b.arrival <= now) {
            let batch = deferred.remove(0);
            for (sm, work) in batch.per_sm.into_iter().enumerate() {
                if !work.is_empty() {
                    Self::deal_event(sms, sm, work, now, timeq, boundary_util, has_shared);
                    progressed = true;
                }
            }
        }
        if let Some(dispatcher) = adaptive {
            let signals = Self::tenant_signals(sms, shared, num_tenants);
            let free: Vec<usize> = sms.iter().map(|s| s.lock().free_warp_slots()).collect();
            for (sm, work) in dispatcher.on_boundary(now, &signals, &free) {
                Self::deal_event(sms, sm, work, now, timeq, boundary_util, has_shared);
                progressed = true;
            }
        }
        progressed
    }

    /// Hands a dealt work batch to an SM on the event path: settle any
    /// parked idle lag first (new CTAs must launch *after* the idle span is
    /// accounted, matching the oracle's advance-then-dispatch boundary
    /// order), then push the work and wake the SM at the boundary.
    fn deal_event(
        sms: &[Mutex<Sm>],
        unit: usize,
        work: Vec<crate::dispatch::CtaWork>,
        now: Cycle,
        timeq: &mut TimeQueue,
        boundary_util: f64,
        has_shared: bool,
    ) {
        let mut sm = sms[unit].lock();
        if !sm.is_done() && !sm.hit_cap() && sm.cycle() < now {
            if has_shared {
                sm.set_dram_utilization(boundary_util);
            }
            sm.run_epoch_event(now);
        }
        sm.push_work(work, now);
        drop(sm);
        timeq.schedule_min(unit, now);
    }

    /// Cumulative per-tenant monitor signals at an epoch boundary: L1 and
    /// CTA-retire counters summed over the SMs, L2/DRAM attribution read from
    /// the shared backend (or the single SM's private partition).
    fn tenant_signals(
        sms: &[Mutex<Sm>],
        shared: Option<&BankedMemorySystem>,
        num_tenants: usize,
    ) -> Vec<TenantSignal> {
        let mut out = vec![TenantSignal::default(); num_tenants];
        for sm in sms {
            let sm = sm.lock();
            for (t, stats) in sm.tenant_stats().iter().enumerate().take(num_tenants) {
                out[t].l1_accesses += stats.l1d_accesses;
                out[t].l1_hits += stats.l1d_hits;
                out[t].instructions += stats.instructions;
                out[t].ctas_completed += stats.ctas_completed;
            }
            if shared.is_none() {
                if let Some(table) = sm.partition_tenant_stats() {
                    for (t, m) in table.iter().enumerate().take(num_tenants) {
                        out[t].l2_accesses += m.l2_accesses;
                        out[t].l2_hits += m.l2_hits;
                        out[t].dram_accesses += m.dram_accesses;
                    }
                }
            }
        }
        if let Some(shared) = shared {
            for (t, m) in shared.tenant_stats().iter().enumerate().take(num_tenants) {
                out[t].l2_accesses += m.l2_accesses;
                out[t].l2_hits += m.l2_hits;
                out[t].dram_accesses += m.dram_accesses;
            }
        }
        out
    }

    /// Consumes the engine and assembles the chip-level [`SimResult`]:
    /// per-SM statistics plus the [`SmStats::reduce`] aggregate, with the
    /// shared backend's L2/DRAM counters substituted for the (empty) per-SM
    /// ones on multi-SM chips, and one [`TenantResult`] per kernel stream
    /// (per-SM tenant counters merged, L2/DRAM attribution read back from
    /// whichever memory system served the run).
    pub fn into_result(mut self) -> SimResult {
        for sm in &mut self.sms {
            sm.get_mut().finalize_stats();
        }
        let num_sms = self.sms.len();
        let num_tenants = self.tenant_names.len();
        let mut per_sm: Vec<SmStats> = Vec::with_capacity(num_sms);
        let mut interference = InterferenceMatrix::new(self.config.max_warps_per_sm);
        let mut scheduler_metrics = SchedulerMetrics::default();
        let mut capped = false;
        let mut cycles: Cycle = 0;
        let mut tenant_totals: Vec<TenantStats> =
            vec![TenantStats { done: true, ..TenantStats::default() }; num_tenants];
        let mut tenant_mem: Vec<TenantMemStats> = Vec::new();
        let interconnect = {
            let sms: Vec<&Sm> = self.sms.iter_mut().map(|s| &*s.get_mut()).collect();
            for sm in &sms {
                per_sm.push(sm.stats().clone());
                interference.absorb(sm.interference_matrix());
                scheduler_metrics.merge(&sm.scheduler().metrics());
                capped |= !sm.is_done();
                cycles = cycles.max(sm.cycle());
                for (t, entry) in sm.tenant_stats().iter().enumerate() {
                    if t < num_tenants {
                        tenant_totals[t].merge(entry);
                    }
                }
                if let Some(table) = sm.partition_tenant_stats() {
                    merge_tenant_stats(&mut tenant_mem, &table);
                }
            }
            Crossbar::aggregate(sms.iter().map(|sm| sm.interconnect()))
        };
        if let Some(shared) = &self.shared {
            merge_tenant_stats(&mut tenant_mem, &shared.tenant_stats());
        }
        tenant_mem.resize(num_tenants.max(tenant_mem.len()), TenantMemStats::default());
        // CTAs the adaptive dispatcher never managed to deal (run ended by a
        // cap first) mean the tenant did not finish, even though every SM
        // completed what it was handed.
        let undealt: Vec<usize> = (0..num_tenants)
            .map(|t| self.adaptive.as_ref().map_or(0, |a| a.pending_ctas(t as TenantId)))
            .collect();
        let fabric = self.fabric.as_ref().map(CrossbarFabric::stats).unwrap_or_default();
        let per_tenant: Vec<TenantResult> = tenant_totals
            .iter()
            .enumerate()
            .map(|(t, totals)| TenantResult {
                tenant: t as TenantId,
                kernel: self.tenant_names[t].clone(),
                qos: self.tenant_qos[t].to_string(),
                instructions: totals.instructions,
                finish_cycle: totals.finish_cycle,
                capped: !totals.done || undealt[t] > 0,
                l1d_accesses: totals.l1d_accesses,
                l1d_hits: totals.l1d_hits,
                xbar_bytes: totals.xbar_bytes,
                fabric_request_bytes: fabric.request.tenant_bytes(t as TenantId),
                fabric_reply_bytes: fabric.reply.tenant_bytes(t as TenantId),
                mem: tenant_mem[t],
            })
            .collect();
        let time_series =
            TimeSeries::merge_sorted(self.sms.iter_mut().map(|s| s.get_mut().time_series()));
        let mut stats = SmStats::reduce(&per_sm);
        stats.cycles = cycles;
        if let Some(shared) = &self.shared {
            let p = shared.stats();
            stats.l2 = p.l2;
            stats.dram = p.dram;
        }
        let capped = capped || undealt.iter().any(|&u| u > 0);
        SimResult {
            schema_version: crate::simulator::SCHEMA_VERSION,
            backend: self.backend.to_string(),
            scheduler: self.scheduler_name,
            kernel: self.kernel_name,
            policy: self.policy.label().to_string(),
            cycles,
            stats,
            time_series,
            interference,
            scheduler_metrics,
            capped,
            num_sms,
            per_sm,
            per_tenant,
            interconnect,
            fabric,
            dispatch_log: self.dispatch_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::GtoScheduler;
    use crate::trace::{VecProgram, WarpOp};
    use proptest::prelude::*;

    fn kernel(ctas: usize, ops: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: "gpu-unit".into(),
            num_ctas: ctas,
            warps_per_cta: 2,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..ops)
                .map(|i| {
                    WarpOp::coalesced_load((cta as u64 * 1009 + w as u64 * 97 + i as u64) * 128)
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    fn units(n: usize) -> Vec<SmUnit> {
        (0..n).map(|_| (Box::new(GtoScheduler::new()) as Box<dyn WarpScheduler>, None)).collect()
    }

    #[test]
    fn two_streams_share_the_chip_and_split_attribution() {
        let streams =
            vec![KernelStream::new(0, kernel(2, 10)), KernelStream::new(1, kernel(2, 10))];
        let mut gpu = Gpu::with_streams(
            GpuConfig::gtx480(),
            streams,
            DispatchPolicy::SharedRoundRobin,
            units(2),
        );
        gpu.run();
        let res = gpu.into_result();
        assert_eq!(res.per_tenant.len(), 2);
        assert_eq!(res.kernel, "gpu-unit+gpu-unit");
        // Both kernels executed all their instructions and the per-tenant
        // split covers the chip totals exactly.
        for t in &res.per_tenant {
            assert_eq!(t.instructions, 2 * 2 * 10);
            assert!(!t.capped);
            assert!(t.finish_cycle > 0);
        }
        let inst: u64 = res.per_tenant.iter().map(|t| t.instructions).sum();
        assert_eq!(inst, res.stats.instructions);
        let l1: u64 = res.per_tenant.iter().map(|t| t.l1d_accesses).sum();
        assert_eq!(l1, res.stats.l1d.accesses());
        let l2: u64 = res.per_tenant.iter().map(|t| t.mem.l2_accesses).sum();
        assert_eq!(l2, res.stats.l2.accesses());
    }

    #[test]
    fn multi_sm_runs_all_instructions() {
        let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(4, 10), units(2));
        assert_eq!(gpu.num_sms(), 2);
        gpu.run();
        let res = gpu.into_result();
        assert!(!res.capped);
        assert_eq!(res.num_sms, 2);
        assert_eq!(res.per_sm.len(), 2);
        // 4 CTAs x 2 warps x 10 loads, split across both SMs.
        assert_eq!(res.stats.instructions, 4 * 2 * 10);
        assert_eq!(res.per_sm.iter().map(|s| s.instructions).sum::<u64>(), 80);
        assert!(res.per_sm.iter().all(|s| s.instructions == 40));
        // Chip L2 saw traffic through the shared backend, carried over the
        // SMs' crossbar ports.
        assert!(res.stats.l2.accesses() > 0);
        assert!(res.interconnect.bytes_transferred > 0);
    }

    #[test]
    fn multi_sm_is_deterministic() {
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(8, 25), units(4));
            gpu.run();
            gpu.into_result()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.per_sm, b.per_sm);
        assert_eq!(a.time_series, b.time_series);
    }

    #[test]
    fn late_arrival_is_admitted_at_an_epoch_boundary() {
        let streams = vec![
            KernelStream::new(0, kernel(3, 12)),
            KernelStream::new_at(1, kernel(3, 12), 2_000),
        ];
        let mut gpu = Gpu::with_streams(
            GpuConfig::gtx480(),
            streams,
            DispatchPolicy::SharedRoundRobin,
            units(2),
        );
        gpu.run();
        let res = gpu.into_result();
        assert!(!res.capped);
        // Both grids executed fully; the late tenant finished after arriving.
        assert_eq!(res.stats.instructions, 2 * (3 * 2 * 12));
        assert!(res.per_tenant[1].finish_cycle >= 2_000);
        assert!(res.per_tenant[0].finish_cycle < res.per_tenant[1].finish_cycle);
    }

    #[test]
    fn far_future_arrival_fast_forwards_instead_of_spinning() {
        let streams = vec![
            KernelStream::new(0, kernel(1, 4)),
            KernelStream::new_at(1, kernel(1, 4), 1_000_000),
        ];
        let mut gpu = Gpu::with_streams(
            GpuConfig::gtx480(),
            streams,
            DispatchPolicy::SharedRoundRobin,
            units(2),
        );
        gpu.run();
        let res = gpu.into_result();
        assert!(!res.capped);
        assert_eq!(res.stats.instructions, 2 * (2 * 4));
        assert!(res.cycles >= 1_000_000, "chip clock covers the idle gap");
        assert!(res.cycles < 1_100_000, "and the gap was skipped, not simulated");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
        /// A single-tenant chip run under the adaptive policy is bit-identical
        /// to `Exclusive`: with nothing to arbitrate the dispatcher must
        /// vanish entirely.
        #[test]
        fn single_tenant_interference_aware_matches_exclusive(
            ctas in 1usize..8,
            ops in 1usize..16,
            sms in 1usize..6,
        ) {
            let run = |policy| {
                let stream = KernelStream::new(0, kernel(ctas, ops));
                let mut gpu =
                    Gpu::with_streams(GpuConfig::gtx480(), vec![stream], policy, units(sms));
                gpu.run();
                gpu.into_result()
            };
            let a = run(DispatchPolicy::Exclusive);
            let b = run(DispatchPolicy::InterferenceAware);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.stats, b.stats);
            prop_assert_eq!(a.per_sm, b.per_sm);
            prop_assert_eq!(a.per_tenant, b.per_tenant);
            prop_assert_eq!(a.time_series, b.time_series);
            prop_assert_eq!(a.dispatch_log, b.dispatch_log);
        }
    }

    #[test]
    fn more_sms_do_not_slow_the_chip() {
        let cycles = |n: usize| {
            let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(8, 20), units(n));
            gpu.run();
            gpu.into_result().cycles
        };
        assert!(cycles(2) <= cycles(1));
    }

    /// A streaming kernel wide enough to push the per-epoch batch past the
    /// parallel-service threshold on a several-SM chip.
    fn streaming_kernel(ctas: usize, ops: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: "stream".into(),
            num_ctas: ctas,
            warps_per_cta: 8,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            // Globally unique blocks: every load misses everywhere.
            let ops = (0..ops)
                .map(|i| {
                    WarpOp::coalesced_load(
                        (cta as u64 * 65_536 + w as u64 * 4_096 + i as u64) * 128,
                    )
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    #[test]
    fn fabric_accounts_every_downstream_request_in_both_directions() {
        let mut gpu = Gpu::new(GpuConfig::gtx480(), streaming_kernel(8, 30), units(4));
        gpu.run();
        let res = gpu.into_result();
        assert!(!res.capped);
        // Every injection-port transfer pairs with exactly one downstream
        // request, and every request crosses the shared request fabric.
        assert_eq!(res.fabric.request.bytes_transferred, res.interconnect.bytes_transferred);
        // A pure-load run replies to every request.
        assert_eq!(res.fabric.reply.bytes_transferred, res.fabric.request.bytes_transferred);
        // Per-tenant fabric bytes sum to the direction totals and surface in
        // the tenant breakdown.
        assert_eq!(
            res.fabric.request.tenant_bytes.iter().sum::<u64>(),
            res.fabric.request.bytes_transferred
        );
        assert_eq!(res.per_tenant[0].fabric_request_bytes, res.fabric.request.bytes_transferred);
        assert_eq!(res.per_tenant[0].fabric_reply_bytes, res.fabric.reply.bytes_transferred);
        // Eight warps per SM streaming misses through a 480 B/cycle budget:
        // the fabric must have made someone wait.
        assert!(
            res.fabric.request.queueing_cycles + res.fabric.reply.queueing_cycles > 0,
            "expected shared-fabric contention on a streaming co-run"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
        /// Bank-sharded barrier service is a pure wall-clock knob: the fully
        /// serialised `SimResult` is byte-identical across service-thread
        /// counts for arbitrary bank counts (1 disables sharding, larger
        /// counts exercise the parallel path once batches are big enough).
        #[test]
        fn service_thread_count_never_changes_results(
            banks in 1usize..9,
            sms in 2usize..7,
            ctas in 2usize..8,
            ops in 8usize..32,
        ) {
            let run = |threads: usize| {
                let config =
                    GpuConfig::gtx480().with_l2_banks(banks).with_service_threads(threads);
                let mut gpu = Gpu::new(config, streaming_kernel(ctas, ops), units(sms));
                gpu.run();
                serde_json::to_string(&gpu.into_result()).expect("serialise")
            };
            let serial = run(1);
            prop_assert_eq!(&serial, &run(2));
            prop_assert_eq!(&serial, &run(8));
        }
    }

    /// Serialises a finished chip's result with the backend label blanked,
    /// so epoch- and event-driven runs can be compared field for field.
    fn normalized_json(gpu: Gpu) -> String {
        let mut res = gpu.into_result();
        res.backend = String::new();
        serde_json::to_string(&res).expect("serialise")
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
        /// The event-driven core is bit-identical to the epoch oracle across
        /// chip widths, dispatch policies, and dynamic arrivals — every stat,
        /// time-series point, and dispatch-log entry must match exactly.
        #[test]
        fn event_backend_matches_epoch_oracle(
            sms in 1usize..6,
            ctas in 1usize..6,
            ops in 1usize..16,
            arrival in 0u64..3_000,
            policy_idx in 0usize..3,
        ) {
            let policy = [
                DispatchPolicy::SpatialPartition,
                DispatchPolicy::SharedRoundRobin,
                DispatchPolicy::InterferenceAware,
            ][policy_idx];
            let run = |event: bool| {
                let streams = vec![
                    KernelStream::new(0, kernel(ctas, ops)),
                    KernelStream::new_at(1, kernel(ctas, ops), arrival),
                ];
                let mut gpu =
                    Gpu::with_streams(GpuConfig::gtx480(), streams, policy, units(sms));
                if event { gpu.run_event() } else { gpu.run() };
                normalized_json(gpu)
            };
            prop_assert_eq!(run(false), run(true));
        }
    }

    #[test]
    fn event_backend_matches_epoch_on_streaming_chip() {
        let run = |event: bool| {
            let mut gpu = Gpu::new(GpuConfig::gtx480(), streaming_kernel(8, 30), units(4));
            if event {
                gpu.run_event()
            } else {
                gpu.run()
            };
            normalized_json(gpu)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn event_backend_fast_forwards_far_arrivals_too() {
        let run = |event: bool| {
            let streams = vec![
                KernelStream::new(0, kernel(1, 4)),
                KernelStream::new_at(1, kernel(1, 4), 1_000_000),
            ];
            let mut gpu = Gpu::with_streams(
                GpuConfig::gtx480(),
                streams,
                DispatchPolicy::SharedRoundRobin,
                units(2),
            );
            if event {
                gpu.run_event()
            } else {
                gpu.run()
            };
            gpu.into_result()
        };
        let epoch = run(false);
        let event = run(true);
        assert_eq!(event.backend, "event");
        assert_eq!(epoch.cycles, event.cycles);
        assert_eq!(epoch.stats, event.stats);
        assert!(event.cycles >= 1_000_000 && event.cycles < 1_100_000);
    }

    #[test]
    fn observability_never_changes_results_and_traces_identically_across_backends() {
        let run = |event: bool, obs: ObsLevel| {
            let streams = vec![
                KernelStream::new(0, kernel(3, 12)),
                KernelStream::new_at(1, kernel(3, 12), 500),
            ];
            let mut gpu = Gpu::with_streams(
                GpuConfig::gtx480(),
                streams,
                DispatchPolicy::InterferenceAware,
                units(4),
            );
            gpu.set_obs(obs);
            if event {
                gpu.run_event()
            } else {
                gpu.run()
            };
            let report = gpu.take_obs();
            (normalized_json(gpu), report)
        };
        let (plain, off) = run(false, ObsLevel::Off);
        assert!(off.events.is_empty());
        let (epoch, a) = run(false, ObsLevel::Full);
        let (event, b) = run(true, ObsLevel::Full);
        // Collection is passive: the simulated outcome is byte-identical
        // with observability off, on, and across timing backends.
        assert_eq!(plain, epoch);
        assert_eq!(epoch, event);
        // And the canonical sim-time trace itself is backend-invariant.
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.metrics_json(), b.metrics_json());
        assert!(!a.events.is_empty());
        assert_eq!(a.dropped_events, 0);
        // The event backend records engine pops; they stay out of the
        // canonical export but surface in the raw event list.
        assert!(b.events.iter().any(|e| e.name == "pop"));
        assert!(!a.events.iter().any(|e| e.name == "pop"));
        // Wall-clock profiling was active and saw the service pipeline.
        assert!(a.profile.is_enabled());
        assert!(a.profile.stat("bank-service").is_some());
    }

    #[test]
    fn exclusive_serial_queue_is_backend_agnostic() {
        let mut queue = crate::dispatch::KernelQueue::new();
        queue.push(kernel(3, 12));
        queue.push_at(kernel(3, 12), 5_000);
        let config = GpuConfig::gtx480().with_num_sms(3);
        let build = |_: usize| (Box::new(GtoScheduler::new()) as Box<dyn WarpScheduler>, None);
        let epoch = queue.run_with(
            &config,
            DispatchPolicy::Exclusive,
            crate::event::BackendKind::Epoch,
            build,
        );
        let mut event = queue.run_with(
            &config,
            DispatchPolicy::Exclusive,
            crate::event::BackendKind::Event,
            build,
        );
        assert_eq!(event.backend, "event");
        event.backend = epoch.backend.clone();
        assert_eq!(serde_json::to_string(&epoch).unwrap(), serde_json::to_string(&event).unwrap());
    }
}
