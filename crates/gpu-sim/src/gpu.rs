//! The multi-SM GPU engine: CTA dispatch, per-SM memory ports, and the
//! barrier-synchronised parallel execution loop.
//!
//! [`Gpu`] turns the single-[`Sm`] simulator into a chip: a round-robin CTA
//! dispatcher splits the kernel's grid across `num_sms` SM engines, every
//! SM's L1 misses travel over its own [`gpu_mem::Crossbar`] port into one
//! shared, banked L2 + DRAM backend ([`gpu_mem::BankedMemorySystem`]), and
//! the per-SM cycle loops execute in parallel with `std::thread::scope`.
//!
//! ## Determinism
//!
//! Results must not depend on how the OS schedules SM worker threads, so the
//! engine advances all SMs in lockstep *epochs* of
//! [`GpuConfig::effective_epoch_cycles`] cycles:
//!
//! 1. **Parallel phase** — every SM runs its epoch against purely SM-local
//!    state. Global-memory requests are time-stamped with their interconnect
//!    arrival cycle and buffered in the SM's [`MemoryPort`], not served.
//! 2. **Barrier phase** — one thread drains all buffered requests, sorts
//!    them by `(arrival cycle, SM index, issue order)`, and serves them
//!    against the shared banked backend, delivering each response back to
//!    its SM's event queue.
//!
//! Because the epoch length is clamped to the minimum SM→L2 round trip,
//! every response computed at a barrier completes at or after the next
//! epoch's start, so deferred service is timing-exact with respect to the
//! SMs' own clocks. The one approximation (documented, deterministic) is
//! that requests are ordered within an epoch batch rather than globally
//! across epochs, so two requests from different epochs that would interleave
//! at a DRAM bank are served batch-major.
//!
//! With a single SM the engine skips the epoch machinery entirely and gives
//! the SM a private memory partition, reproducing the legacy single-SM
//! simulator bit for bit — the built-in correctness anchor for the multi-SM
//! path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crate::config::GpuConfig;
use crate::kernel::{Kernel, KernelInfo};
use crate::redirect::RedirectCache;
use crate::scheduler::{SchedulerMetrics, WarpScheduler};
use crate::simulator::SimResult;
use crate::sm::{ResponseEvent, Sm};
use crate::stats::{InterferenceMatrix, SmStats, TimeSeries};
use crate::trace::WarpProgram;
use gpu_mem::interconnect::Crossbar;
use gpu_mem::l2::{BankedMemorySystem, MemoryPartition, PartitionConfig};
use gpu_mem::{Addr, CtaId, Cycle, WarpId};
use parking_lot::Mutex;

/// One SM's policy unit: its warp scheduler plus the optional redirect cache
/// the CIAO variants install. Multi-SM chips need one unit per SM because
/// policies carry per-SM state (VTAs, interference lists, throttle sets).
pub type SmUnit = (Box<dyn WarpScheduler>, Option<Box<dyn RedirectCache>>);

/// Round-robin CTA dispatch: block `b` of the grid runs on SM `b % num_sms`.
/// Returns one list of global CTA ids per SM, each in launch order.
pub fn dispatch_round_robin(num_ctas: usize, num_sms: usize) -> Vec<Vec<usize>> {
    let num_sms = num_sms.max(1);
    let mut out = vec![Vec::with_capacity(num_ctas.div_ceil(num_sms)); num_sms];
    for b in 0..num_ctas {
        out[b % num_sms].push(b);
    }
    out
}

/// One SM's view of a kernel whose grid was split by the dispatcher: CTA
/// indices are SM-local, and [`Kernel::warp_program`] maps them back to the
/// global CTA id so warp traces are identical to a single-SM run of the same
/// blocks.
pub struct DispatchedKernel {
    inner: Arc<dyn Kernel>,
    info: KernelInfo,
    ctas: Vec<usize>,
}

impl DispatchedKernel {
    /// Wraps `inner`, restricting it to the global CTA ids in `ctas`.
    pub fn new(inner: Arc<dyn Kernel>, ctas: Vec<usize>) -> Self {
        let mut info = inner.info();
        info.num_ctas = ctas.len();
        DispatchedKernel { inner, info, ctas }
    }

    /// The global CTA ids assigned to this SM.
    pub fn assigned_ctas(&self) -> &[usize] {
        &self.ctas
    }
}

impl Kernel for DispatchedKernel {
    fn info(&self) -> KernelInfo {
        self.info.clone()
    }

    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram> {
        self.inner.warp_program(self.ctas[cta as usize] as CtaId, warp_in_cta)
    }
}

/// A global-memory request buffered by a [`MemoryPort`] during an epoch's
/// parallel phase and served against the shared backend at the barrier.
#[derive(Debug, Clone, Copy)]
pub struct MemRequest {
    /// Cycle at which the request arrives at the L2 side of the SM's
    /// interconnect port (already includes link latency and queueing).
    pub arrive: Cycle,
    /// Issue order within the SM (tie-break for deterministic service).
    pub seq: u64,
    /// Block-aligned address.
    pub block: Addr,
    /// Requesting warp (SM-local id).
    pub wid: WarpId,
    /// Whether this is a write.
    pub is_write: bool,
    /// Whether the request bypasses the L2 (statPCAL path).
    pub bypass: bool,
    /// Completion event to deliver back to the SM, if the warp waits on it.
    pub event: Option<ResponseEvent>,
}

/// The SM's port into the downstream memory system.
///
/// `Private` owns a full [`MemoryPartition`] and serves every request at
/// issue time — the legacy single-SM configuration. `Deferred` buffers
/// requests for epoch-barrier service by the [`Gpu`] engine and carries the
/// chip DRAM-utilisation snapshot the scheduler context reads during the
/// parallel phase.
pub enum MemoryPort {
    /// Synchronous private partition (single-SM runs).
    Private(Box<MemoryPartition>),
    /// Epoch-deferred port into the shared chip backend (multi-SM runs).
    Deferred(DeferredPort),
}

/// Request buffer + utilisation snapshot of a deferred port.
#[derive(Debug, Default)]
pub struct DeferredPort {
    queue: Vec<MemRequest>,
    seq: u64,
    dram_utilization: f64,
}

impl MemoryPort {
    /// A private synchronous port over its own partition.
    pub fn private(config: PartitionConfig) -> Self {
        MemoryPort::Private(Box::new(MemoryPartition::new(config)))
    }

    /// A deferred port (requests served by the engine at epoch barriers).
    pub fn deferred() -> Self {
        MemoryPort::Deferred(DeferredPort::default())
    }

    /// Issues a read. Returns `Some(done)` when served synchronously; `None`
    /// when buffered for barrier service (the event is delivered later).
    pub fn read(
        &mut self,
        block: Addr,
        wid: WarpId,
        arrive: Cycle,
        bypass: bool,
        event: ResponseEvent,
    ) -> Option<Cycle> {
        match self {
            MemoryPort::Private(p) => Some(if bypass {
                p.access_bypass(block, arrive)
            } else {
                p.access(block, wid, false, arrive)
            }),
            MemoryPort::Deferred(d) => {
                d.push(MemRequest {
                    arrive,
                    seq: 0,
                    block,
                    wid,
                    is_write: false,
                    bypass,
                    event: Some(event),
                });
                None
            }
        }
    }

    /// Issues a write (fire-and-forget: consumes downstream bandwidth but
    /// never blocks the warp).
    pub fn write(&mut self, block: Addr, wid: WarpId, arrive: Cycle, bypass: bool) {
        match self {
            MemoryPort::Private(p) => {
                if bypass {
                    p.access_bypass(block, arrive);
                } else {
                    p.access(block, wid, true, arrive);
                }
            }
            MemoryPort::Deferred(d) => d.push(MemRequest {
                arrive,
                seq: 0,
                block,
                wid,
                is_write: true,
                bypass,
                event: None,
            }),
        }
    }

    /// DRAM data-bus utilisation visible to the scheduler: live for a
    /// private port, the epoch-start snapshot for a deferred one.
    pub fn dram_utilization(&self, now: Cycle) -> f64 {
        match self {
            MemoryPort::Private(p) => p.dram_bandwidth_utilization(now),
            MemoryPort::Deferred(d) => d.dram_utilization,
        }
    }

    /// Drains the buffered requests (empty for a private port).
    pub fn drain(&mut self) -> Vec<MemRequest> {
        match self {
            MemoryPort::Private(_) => Vec::new(),
            MemoryPort::Deferred(d) => std::mem::take(&mut d.queue),
        }
    }

    /// Updates the utilisation snapshot (no-op for a private port).
    pub fn set_dram_utilization(&mut self, util: f64) {
        if let MemoryPort::Deferred(d) = self {
            d.dram_utilization = util;
        }
    }

    /// The private partition's statistics, if this port owns one.
    pub fn partition_stats(&self) -> Option<gpu_mem::PartitionStats> {
        match self {
            MemoryPort::Private(p) => Some(p.stats()),
            MemoryPort::Deferred(_) => None,
        }
    }
}

impl DeferredPort {
    fn push(&mut self, mut req: MemRequest) {
        req.seq = self.seq;
        self.seq += 1;
        self.queue.push(req);
    }
}

/// The chip-level engine: `num_sms` SMs, one shared banked L2/DRAM backend,
/// and the deterministic epoch loop. See the module docs for the execution
/// model.
pub struct Gpu {
    config: GpuConfig,
    kernel_name: String,
    scheduler_name: String,
    sms: Vec<Mutex<Sm>>,
    shared: Option<Arc<BankedMemorySystem>>,
    cycle: Cycle,
}

impl Gpu {
    /// Builds a chip running `kernel` with one `(scheduler, redirect)` unit
    /// per SM; `units.len()` is the number of SMs simulated.
    pub fn new(config: GpuConfig, kernel: Arc<dyn Kernel>, units: Vec<SmUnit>) -> Self {
        assert!(!units.is_empty(), "a GPU needs at least one SM");
        let num_sms = units.len();
        let info = kernel.info();
        let assignments = dispatch_round_robin(info.num_ctas, num_sms);
        let shared = (num_sms > 1).then(|| {
            Arc::new(BankedMemorySystem::for_chip(
                config.partition.clone(),
                config.l2_banks,
                num_sms,
            ))
        });
        let links = Crossbar::new(
            num_sms,
            config.interconnect_latency,
            config.interconnect_bytes_per_cycle,
        )
        .into_ports();
        let mut scheduler_name = String::new();
        let sms = units
            .into_iter()
            .zip(assignments)
            .zip(links)
            .map(|(((scheduler, redirect), ctas), link)| {
                if scheduler_name.is_empty() {
                    scheduler_name = scheduler.name().to_string();
                }
                let sub = Box::new(DispatchedKernel::new(Arc::clone(&kernel), ctas));
                let port = if num_sms > 1 {
                    MemoryPort::deferred()
                } else {
                    MemoryPort::private(config.partition.clone())
                };
                Mutex::new(Sm::with_parts(config.clone(), sub, scheduler, redirect, link, port))
            })
            .collect();
        Gpu { config, kernel_name: info.name, scheduler_name, sms, shared, cycle: 0 }
    }

    /// Number of SMs on this chip.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// The shared chip backend (`None` for a single-SM chip, whose SM owns a
    /// private partition instead).
    pub fn shared_memory_system(&self) -> Option<&BankedMemorySystem> {
        self.shared.as_deref()
    }

    /// Runs the chip until every SM finished its CTAs or hit a cap. Returns
    /// the chip cycle count (the slowest SM's clock).
    pub fn run(&mut self) -> Cycle {
        if self.sms.len() == 1 {
            // Single SM: the legacy serial loop, bit-identical to `Sm::run`.
            self.cycle = self.sms[0].get_mut().run();
            return self.cycle;
        }
        self.run_epochs();
        self.cycle
    }

    fn run_epochs(&mut self) {
        let epoch = self.config.effective_epoch_cycles();
        let shared = Arc::clone(self.shared.as_ref().expect("multi-SM chip has a shared backend"));
        let num_sms = self.sms.len();
        let stop = AtomicBool::new(false);
        let epoch_end = AtomicU64::new(0);
        let start_barrier = Barrier::new(num_sms + 1);
        let end_barrier = Barrier::new(num_sms + 1);
        let sms = &self.sms;

        std::thread::scope(|scope| {
            for sm in sms {
                let (stop, epoch_end) = (&stop, &epoch_end);
                let (start_barrier, end_barrier) = (&start_barrier, &end_barrier);
                scope.spawn(move || loop {
                    start_barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let until = epoch_end.load(Ordering::Acquire);
                    {
                        let mut sm = sm.lock();
                        if !sm.is_done() && !sm.hit_cap() {
                            sm.run_epoch(until);
                        }
                    }
                    end_barrier.wait();
                });
            }

            let mut now: Cycle = 0;
            loop {
                let alive = sms.iter().any(|s| {
                    let s = s.lock();
                    !s.is_done() && !s.hit_cap()
                });
                if !alive {
                    stop.store(true, Ordering::Release);
                    start_barrier.wait();
                    break;
                }
                now += epoch;
                epoch_end.store(now, Ordering::Release);
                start_barrier.wait();
                end_barrier.wait();
                Self::serve_epoch(sms, &shared, now);
            }
        });

        // The chip clock is the slowest SM's clock, not the epoch-rounded
        // loop counter (an SM finishing mid-epoch stops its clock there).
        self.cycle = 0;
        for sm in &mut self.sms {
            let sm = sm.get_mut();
            sm.finalize_stats();
            self.cycle = self.cycle.max(sm.cycle());
        }
    }

    /// Barrier phase: drains every SM's buffered requests, serves them
    /// against the shared backend in deterministic `(arrive, SM, seq)` order,
    /// and delivers the responses.
    fn serve_epoch(sms: &[Mutex<Sm>], shared: &BankedMemorySystem, now: Cycle) {
        let mut requests: Vec<(usize, MemRequest)> = Vec::new();
        for (i, sm) in sms.iter().enumerate() {
            let mut sm = sm.lock();
            requests.extend(sm.drain_requests().into_iter().map(|r| (i, r)));
        }
        requests.sort_by_key(|&(sm, r)| (r.arrive, sm, r.seq));
        for (sm_index, r) in requests {
            let done = if r.bypass {
                shared.access_bypass(r.block, r.arrive)
            } else {
                shared.access(r.block, r.wid, r.is_write, r.arrive)
            };
            if let Some(ev) = r.event {
                sms[sm_index].lock().deliver(done, ev);
            }
        }
        let util = shared.dram_bandwidth_utilization(now.max(1));
        for sm in sms {
            sm.lock().set_dram_utilization(util);
        }
    }

    /// Consumes the engine and assembles the chip-level [`SimResult`]:
    /// per-SM statistics plus the [`SmStats::reduce`] aggregate, with the
    /// shared backend's L2/DRAM counters substituted for the (empty) per-SM
    /// ones on multi-SM chips.
    pub fn into_result(mut self) -> SimResult {
        for sm in &mut self.sms {
            sm.get_mut().finalize_stats();
        }
        let num_sms = self.sms.len();
        let mut per_sm: Vec<SmStats> = Vec::with_capacity(num_sms);
        let mut interference = InterferenceMatrix::new(self.config.max_warps_per_sm);
        let mut scheduler_metrics = SchedulerMetrics::default();
        let mut capped = false;
        let mut cycles: Cycle = 0;
        let interconnect = {
            let sms: Vec<&Sm> = self.sms.iter_mut().map(|s| &*s.get_mut()).collect();
            for sm in &sms {
                per_sm.push(sm.stats().clone());
                interference.absorb(sm.interference_matrix());
                scheduler_metrics.merge(&sm.scheduler().metrics());
                capped |= !sm.is_done();
                cycles = cycles.max(sm.cycle());
            }
            Crossbar::aggregate(sms.iter().map(|sm| sm.interconnect()))
        };
        let time_series =
            TimeSeries::merge_sorted(self.sms.iter_mut().map(|s| s.get_mut().time_series()));
        let mut stats = SmStats::reduce(&per_sm);
        stats.cycles = cycles;
        if let Some(shared) = &self.shared {
            let p = shared.stats();
            stats.l2 = p.l2;
            stats.dram = p.dram;
        }
        SimResult {
            scheduler: self.scheduler_name,
            kernel: self.kernel_name,
            cycles,
            stats,
            time_series,
            interference,
            scheduler_metrics,
            capped,
            num_sms,
            per_sm,
            interconnect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClosureKernel, KernelInfo};
    use crate::scheduler::GtoScheduler;
    use crate::trace::{VecProgram, WarpOp};
    use proptest::prelude::*;

    fn kernel(ctas: usize, ops: usize) -> Arc<dyn Kernel> {
        let info = KernelInfo {
            name: "gpu-unit".into(),
            num_ctas: ctas,
            warps_per_cta: 2,
            shared_mem_per_cta: 0,
        };
        Arc::new(ClosureKernel::new(info, move |cta, w| {
            let ops = (0..ops)
                .map(|i| {
                    WarpOp::coalesced_load((cta as u64 * 1009 + w as u64 * 97 + i as u64) * 128)
                })
                .collect();
            Box::new(VecProgram::new(ops))
        }))
    }

    fn units(n: usize) -> Vec<SmUnit> {
        (0..n).map(|_| (Box::new(GtoScheduler::new()) as Box<dyn WarpScheduler>, None)).collect()
    }

    #[test]
    fn round_robin_covers_every_block_once() {
        let lists = dispatch_round_robin(10, 3);
        assert_eq!(lists.len(), 3);
        assert_eq!(lists[0], vec![0, 3, 6, 9]);
        assert_eq!(lists[1], vec![1, 4, 7]);
        assert_eq!(lists[2], vec![2, 5, 8]);
    }

    #[test]
    fn dispatched_kernel_maps_local_to_global_ctas() {
        let k = kernel(6, 1);
        let sub = DispatchedKernel::new(Arc::clone(&k), vec![1, 4]);
        assert_eq!(sub.info().num_ctas, 2);
        assert_eq!(sub.assigned_ctas(), &[1, 4]);
        // Local CTA 1 replays global CTA 4's trace.
        let mut direct = k.warp_program(4, 0);
        let mut via = sub.warp_program(1, 0);
        assert_eq!(direct.next_op(), via.next_op());
    }

    #[test]
    fn multi_sm_runs_all_instructions() {
        let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(4, 10), units(2));
        assert_eq!(gpu.num_sms(), 2);
        gpu.run();
        let res = gpu.into_result();
        assert!(!res.capped);
        assert_eq!(res.num_sms, 2);
        assert_eq!(res.per_sm.len(), 2);
        // 4 CTAs x 2 warps x 10 loads, split across both SMs.
        assert_eq!(res.stats.instructions, 4 * 2 * 10);
        assert_eq!(res.per_sm.iter().map(|s| s.instructions).sum::<u64>(), 80);
        assert!(res.per_sm.iter().all(|s| s.instructions == 40));
        // Chip L2 saw traffic through the shared backend, carried over the
        // SMs' crossbar ports.
        assert!(res.stats.l2.accesses() > 0);
        assert!(res.interconnect.bytes_transferred > 0);
    }

    #[test]
    fn multi_sm_is_deterministic() {
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(8, 25), units(4));
            gpu.run();
            gpu.into_result()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.per_sm, b.per_sm);
        assert_eq!(a.time_series, b.time_series);
    }

    #[test]
    fn more_sms_do_not_slow_the_chip() {
        let cycles = |n: usize| {
            let mut gpu = Gpu::new(GpuConfig::gtx480(), kernel(8, 20), units(n));
            gpu.run();
            gpu.into_result().cycles
        };
        assert!(cycles(2) <= cycles(1));
    }

    proptest! {
        /// The dispatcher assigns every block exactly once, for any shape.
        #[test]
        fn dispatch_is_a_partition(blocks in 0usize..500, sms in 1usize..32) {
            let lists = dispatch_round_robin(blocks, sms);
            prop_assert_eq!(lists.len(), sms);
            let mut seen = vec![false; blocks];
            for (sm, list) in lists.iter().enumerate() {
                for &b in list {
                    prop_assert!(b < blocks);
                    prop_assert!(!seen[b], "block {} dispatched twice", b);
                    prop_assert_eq!(b % sms, sm);
                    seen[b] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
