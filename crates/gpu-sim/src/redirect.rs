//! Interface for a redirect cache — the pluggable structure CIAO installs to
//! serve global-memory requests of *isolated* warps out of unused shared
//! memory (§III-B / §IV-B).
//!
//! The SM datapath (`sm` module) owns the orchestration: when the warp
//! scheduler routes a warp's global accesses to [`crate::scheduler::MemRoute::RedirectCache`],
//! the SM first checks the L1D tag array (migrating a resident copy through
//! the response queue to preserve single-copy coherence), then consults the
//! installed `RedirectCache`. The concrete tag/data layout, the address
//! translation unit and the SMMT reservation live in `ciao-core::shmem_cache`,
//! keeping the paper's contribution in its own crate while the generic SM
//! stays reusable.

use gpu_mem::cache::EvictedLine;
use gpu_mem::{Addr, Cycle, WarpId};

/// Result of probing the redirect cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectLookup {
    /// The block is present; the access costs `latency` cycles.
    Hit {
        /// Access latency in cycles (tag + data in parallel under CIAO's
        /// bank-group layout, so typically the scratchpad latency).
        latency: Cycle,
    },
    /// The block is absent; the caller should fetch it from L2 and then call
    /// [`RedirectCache::fill`].
    Miss,
    /// The structure currently has no capacity at all (e.g. the CTAs use the
    /// whole scratchpad); the caller should fall back to the L1D path.
    Unavailable,
}

/// A cache-like structure that can serve redirected global-memory accesses.
pub trait RedirectCache: Send {
    /// Looks up `block_addr` on behalf of warp `wid`. Updates replacement and
    /// statistics state exactly once per call.
    fn lookup(&mut self, block_addr: Addr, wid: WarpId, is_write: bool) -> RedirectLookup;

    /// Fills `block_addr` (after an L2 fetch or an L1D migration), returning
    /// the line it displaced, if any, so the SM can report the eviction to
    /// the interference detector.
    fn fill(&mut self, block_addr: Addr, wid: WarpId) -> Option<EvictedLine>;

    /// Fraction of the structure's data capacity currently holding valid
    /// blocks (the shared-memory utilisation ratio of Fig. 8b).
    fn utilization(&self) -> f64;

    /// Total data capacity in bytes currently reserved for redirected blocks.
    fn capacity_bytes(&self) -> u64;

    /// Number of lookups that hit since construction.
    fn hits(&self) -> u64;

    /// Number of lookups that missed since construction.
    fn misses(&self) -> u64;

    /// Invalidates all contents (between kernels).
    fn invalidate_all(&mut self);

    /// Informs the structure how many bytes of shared memory are currently
    /// *unused* by CTAs and therefore available to it. The SM calls this after
    /// every CTA launch or retirement; implementations shrink or grow their
    /// data+tag area accordingly (CIAO re-inserts its SMMT reservation).
    fn set_capacity(&mut self, _unused_bytes: u64) {}
}

/// A trivial [`RedirectCache`] that is always unavailable. Installing it is
/// equivalent to not having a redirect structure at all; it exists so tests
/// can exercise the SM's fallback path explicitly.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRedirectCache;

impl RedirectCache for NullRedirectCache {
    fn lookup(&mut self, _block_addr: Addr, _wid: WarpId, _is_write: bool) -> RedirectLookup {
        RedirectLookup::Unavailable
    }

    fn fill(&mut self, _block_addr: Addr, _wid: WarpId) -> Option<EvictedLine> {
        None
    }

    fn utilization(&self) -> f64 {
        0.0
    }

    fn capacity_bytes(&self) -> u64 {
        0
    }

    fn hits(&self) -> u64 {
        0
    }

    fn misses(&self) -> u64 {
        0
    }

    fn invalidate_all(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_redirect_cache_is_always_unavailable() {
        let mut c = NullRedirectCache;
        assert_eq!(c.lookup(0x80, 0, false), RedirectLookup::Unavailable);
        assert!(c.fill(0x80, 0).is_none());
        assert_eq!(c.utilization(), 0.0);
        assert_eq!(c.capacity_bytes(), 0);
        assert_eq!(c.hits() + c.misses(), 0);
        c.invalidate_all();
    }
}
