//! Warp-scheduler policy interface and the baseline schedulers.
//!
//! The SM consults a [`WarpScheduler`] every cycle to pick which ready warp
//! issues next, asks it how to *route* each warp's global-memory accesses
//! (L1D, redirect cache, or L1D bypass), and feeds it the cache events it
//! needs to build locality/interference estimators (VTA hits, evictions).
//!
//! The baselines implemented here:
//!
//! * [`GtoScheduler`] — greedy-then-oldest, the base policy every other
//!   scheduler in the paper builds on ("CCWS, Best-SWL, and CIAO-P/T/C
//!   leverage GTO to decide the order of execution of warps", §V-A).
//! * [`LrrScheduler`] — loose round-robin, kept as a sanity baseline.
//!
//! CCWS, Best-SWL and statPCAL live in `ciao-schedulers`; CIAO-T/P/C live in
//! `ciao-core`. They all implement this trait.

use crate::warp::Warp;
use gpu_mem::cache::EvictedLine;
use gpu_mem::{Addr, Cycle, WarpId};
use serde::{Deserialize, Serialize};

/// Which on-chip structure a warp's global-memory accesses should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemRoute {
    /// Normal path through the L1D cache.
    L1d,
    /// CIAO path: the redirect cache carved out of unused shared memory.
    RedirectCache,
    /// statPCAL-style path: bypass the L1D and go straight to L2/DRAM.
    Bypass,
}

/// Which cache produced a [`CacheEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheKind {
    /// The L1D cache.
    L1d,
    /// The redirect (shared-memory) cache.
    Redirect,
}

/// Outcome recorded in a [`CacheEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheEventOutcome {
    /// The access hit; `owner` is the warp that originally filled the line.
    Hit {
        /// Warp that brought the line into the cache.
        owner: WarpId,
    },
    /// The access missed.
    Miss,
}

/// One L1D / redirect-cache access event, as observed by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEvent {
    /// Which cache the event happened in.
    pub kind: CacheKind,
    /// Warp performing the access.
    pub wid: WarpId,
    /// Block-aligned address accessed.
    pub block_addr: Addr,
    /// Whether the access was a write.
    pub is_write: bool,
    /// Hit/miss outcome.
    pub outcome: CacheEventOutcome,
    /// Line evicted by the fill triggered by this access, if any. The evicted
    /// line's `owner` is the *interfered* warp; `wid` is the *interfering*
    /// warp (§III-A terminology).
    pub evicted: Option<EvictedLine>,
    /// Cycle at which the event occurred.
    pub now: Cycle,
}

/// Read-only context handed to the scheduler when it picks a warp.
pub struct SchedulerCtx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// All warps resident on the SM (indexed by warp id).
    pub warps: &'a [Warp],
    /// Indices into `warps` of the warps able to issue this cycle (ready and
    /// not finished); throttling decisions are the scheduler's own business.
    pub ready: &'a [usize],
    /// Total dynamic instructions executed on this SM so far.
    pub instructions_executed: u64,
    /// Number of warps that have not yet finished their programs.
    pub active_warps: usize,
    /// DRAM data-bus utilisation estimate in `[0, 1]` (consulted by
    /// bandwidth-aware bypass policies such as statPCAL).
    pub dram_utilization: f64,
}

/// Counters a scheduler exposes for reporting (harness figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerMetrics {
    /// VTA hits observed so far (locality lost to interference).
    pub vta_hits: u64,
    /// Number of warps currently prevented from issuing by the policy.
    pub throttled_warps: usize,
    /// Number of warps currently routed to the redirect cache.
    pub isolated_warps: usize,
    /// Number of warps currently routed to the bypass path.
    pub bypassed_warps: usize,
}

impl SchedulerMetrics {
    /// Adds another scheduler instance's counters into this one. Multi-SM
    /// runs instantiate one scheduler per SM and report the chip-wide sums.
    pub fn merge(&mut self, other: &SchedulerMetrics) {
        self.vta_hits += other.vta_hits;
        self.throttled_warps += other.throttled_warps;
        self.isolated_warps += other.isolated_warps;
        self.bypassed_warps += other.bypassed_warps;
    }
}

/// A warp-scheduling (and memory-routing) policy.
pub trait WarpScheduler: Send {
    /// Short policy name used in reports ("GTO", "CCWS", "CIAO-C", ...).
    fn name(&self) -> &'static str;

    /// Picks the warp (an index into `ctx.warps`) to issue this cycle, or
    /// `None` to idle. Implementations must only return indices contained in
    /// `ctx.ready` and must respect their own throttling decisions.
    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize>;

    /// Notifies the scheduler that the SM skipped `skipped` consecutive
    /// cycles on which *no* warp was ready (the event-driven backend's
    /// idle-cycle fast-forward). `ctx` is the context of the *last* skipped
    /// cycle, with `ctx.ready` empty.
    ///
    /// Contract: after this call the scheduler must be in exactly the state
    /// it would hold after `skipped` consecutive [`WarpScheduler::pick`]
    /// calls with an empty ready set. Schedulers whose empty-ready `pick` is
    /// pure (GTO, LRR) keep this default no-op; schedulers that mutate state
    /// on empty picks (CCWS score decay, CIAO low-epoch checks, dirty-flag
    /// recomputes) must override it.
    fn on_idle_cycles(&mut self, _ctx: &SchedulerCtx<'_>, _skipped: u64) {}

    /// Notifies the scheduler that warp `wid` issued an operation.
    fn on_issue(&mut self, _wid: WarpId, _is_mem: bool, _now: Cycle) {}

    /// Feeds the scheduler an L1D / redirect-cache event.
    fn on_cache_event(&mut self, _ev: &CacheEvent) {}

    /// Notifies the scheduler that a (new) warp was launched into slot `wid`.
    /// Warp slots are reused across CTA waves, so schedulers that keep
    /// per-slot state (throttle flags, scores, finished markers) must reset
    /// it here.
    fn on_warp_launched(&mut self, _wid: WarpId, _now: Cycle) {}

    /// Notifies the scheduler that warp `wid` finished its program.
    fn on_warp_finished(&mut self, _wid: WarpId, _now: Cycle) {}

    /// Asks where warp `wid`'s next global-memory access should go.
    fn route(&mut self, _wid: WarpId) -> MemRoute {
        MemRoute::L1d
    }

    /// True if the policy currently prevents warp `wid` from issuing.
    fn is_throttled(&self, _wid: WarpId) -> bool {
        false
    }

    /// When true, a throttled warp is only prevented from issuing
    /// *global-memory* instructions (loads/stores); compute, barrier and
    /// scratchpad instructions still issue. This is CCWS's and statPCAL's
    /// behaviour — they gate the LD/ST unit, not the whole warp — whereas
    /// Best-SWL and CIAO-T stall the warp entirely (the default).
    fn throttles_loads_only(&self) -> bool {
        false
    }

    /// Policy-specific counters for reporting.
    fn metrics(&self) -> SchedulerMetrics {
        SchedulerMetrics::default()
    }
}

/// Greedy-then-oldest scheduler.
///
/// Keeps issuing from the most recently issued warp as long as it stays
/// ready; otherwise falls back to the oldest (lowest launch sequence) ready
/// warp. This is the GTO baseline of §V-A (with the set-index hashing
/// enhancement living in the cache model rather than the scheduler).
#[derive(Debug, Default)]
pub struct GtoScheduler {
    last_issued: Option<usize>,
}

impl GtoScheduler {
    /// Creates a GTO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for GtoScheduler {
    fn name(&self) -> &'static str {
        "GTO"
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        // Greedy: stick with the last issued warp if it is still ready.
        if let Some(last) = self.last_issued {
            if ctx.ready.contains(&last) {
                return Some(last);
            }
        }
        // Oldest: smallest launch sequence among ready warps.
        let oldest = ctx.ready.iter().copied().min_by_key(|&i| ctx.warps[i].launch_seq)?;
        self.last_issued = Some(oldest);
        Some(oldest)
    }

    fn on_issue(&mut self, _wid: WarpId, _is_mem: bool, _now: Cycle) {}
}

/// Loose round-robin scheduler: issues from ready warps in cyclic order.
#[derive(Debug, Default)]
pub struct LrrScheduler {
    next: usize,
}

impl LrrScheduler {
    /// Creates a loose round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WarpScheduler for LrrScheduler {
    fn name(&self) -> &'static str {
        "LRR"
    }

    fn pick(&mut self, ctx: &SchedulerCtx<'_>) -> Option<usize> {
        if ctx.ready.is_empty() {
            return None;
        }
        let n = ctx.warps.len().max(1);
        for offset in 0..n {
            let candidate = (self.next + offset) % n;
            if ctx.ready.contains(&candidate) {
                self.next = (candidate + 1) % n;
                return Some(candidate);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecProgram;
    use crate::warp::Warp;

    fn make_warps(n: usize) -> Vec<Warp> {
        (0..n)
            .map(|i| Warp::new(i as WarpId, 0, i as u64, Box::new(VecProgram::new(vec![]))))
            .collect()
    }

    fn ctx<'a>(warps: &'a [Warp], ready: &'a [usize]) -> SchedulerCtx<'a> {
        SchedulerCtx {
            now: 0,
            warps,
            ready,
            instructions_executed: 0,
            active_warps: warps.len(),
            dram_utilization: 0.0,
        }
    }

    #[test]
    fn gto_prefers_oldest_initially() {
        let warps = make_warps(4);
        let mut s = GtoScheduler::new();
        let ready = vec![2, 1, 3];
        assert_eq!(s.pick(&ctx(&warps, &ready)), Some(1));
    }

    #[test]
    fn gto_is_greedy_on_same_warp() {
        let warps = make_warps(4);
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick(&ctx(&warps, &[0, 1, 2, 3])), Some(0));
        // Warp 0 still ready: keep issuing from it even if others are ready.
        assert_eq!(s.pick(&ctx(&warps, &[1, 0, 3])), Some(0));
        // Warp 0 no longer ready: fall back to the oldest ready warp.
        assert_eq!(s.pick(&ctx(&warps, &[3, 2])), Some(2));
        // And become greedy on that one.
        assert_eq!(s.pick(&ctx(&warps, &[3, 2])), Some(2));
    }

    #[test]
    fn gto_returns_none_when_nothing_ready() {
        let warps = make_warps(2);
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick(&ctx(&warps, &[])), None);
    }

    #[test]
    fn lrr_rotates() {
        let warps = make_warps(3);
        let mut s = LrrScheduler::new();
        assert_eq!(s.pick(&ctx(&warps, &[0, 1, 2])), Some(0));
        assert_eq!(s.pick(&ctx(&warps, &[0, 1, 2])), Some(1));
        assert_eq!(s.pick(&ctx(&warps, &[0, 1, 2])), Some(2));
        assert_eq!(s.pick(&ctx(&warps, &[0, 1, 2])), Some(0));
    }

    #[test]
    fn lrr_skips_unready() {
        let warps = make_warps(3);
        let mut s = LrrScheduler::new();
        assert_eq!(s.pick(&ctx(&warps, &[1])), Some(1));
        assert_eq!(s.pick(&ctx(&warps, &[0, 1])), Some(0));
    }

    #[test]
    fn default_trait_methods() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.route(0), MemRoute::L1d);
        assert!(!s.is_throttled(0));
        assert_eq!(s.metrics(), SchedulerMetrics::default());
    }
}
