//! Metrics registry: named counters, cycle-stamped gauges and log2-bucket
//! histograms, each optionally labelled with a tenant id, exported as
//! deterministic JSON (keys sorted, no floating-point formatting surprises —
//! gauge values are printed with `{:?}`, Rust's shortest round-trip float
//! form).

use std::collections::BTreeMap;

/// A metric name plus optional tenant label. `BTreeMap` keying gives the
/// exporter deterministic iteration order for free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    tenant: Option<u32>,
}

impl MetricKey {
    fn new(name: &str, tenant: Option<u32>) -> Self {
        MetricKey { name: name.to_string(), tenant }
    }

    /// JSON object key: `"name"` or `"name/tenant<t>"`.
    fn label(&self) -> String {
        match self.tenant {
            Some(t) => format!("{}/tenant{}", self.name, t),
            None => self.name.clone(),
        }
    }
}

/// Namespaces a metric name under one chip of a multi-chip (fleet) run:
/// `chip3/completed`. The tenant label stays available for per-tenant
/// series *within* a chip, so a fleet-level registry addresses a series by
/// `(chip_metric(chip, name), tenant)` without colliding across chips.
pub fn chip_metric(chip: usize, name: &str) -> String {
    format!("chip{chip}/{name}")
}

/// A log2-bucket histogram over `u64` samples: bucket `0` holds the value
/// `0`, bucket `i > 0` holds values in `[2^(i-1), 2^i)`. 65 buckets cover
/// the full `u64` range; count/sum/min/max are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Number of log2 buckets (`0` plus one per bit of `u64`).
    pub const NUM_BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; Histogram::NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in: `0` for `0`, otherwise
    /// `floor(log2(v)) + 1` (so bucket `i` spans `[2^(i-1), 2^i)`).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The half-open `[lo, hi)` range bucket `index` covers (`hi` is `None`
    /// for the final bucket, whose upper bound would overflow `u64`).
    pub fn bucket_range(index: usize) -> (u64, Option<u64>) {
        match index {
            0 => (0, Some(1)),
            64 => (1 << 63, None),
            i => (1 << (i - 1), Some(1 << i)),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sample count in bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// `(bucket_lo, count)` pairs for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_range(i).0, c))
            .collect()
    }
}

/// The registry: counters, cycle-stamped gauge series and histograms, each
/// keyed by `(name, tenant)`. All maps are `BTreeMap`s so the JSON export is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, Vec<(u64, f64)>>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&mut self, name: &str, tenant: Option<u32>, delta: u64) {
        *self.counters.entry(MetricKey::new(name, tenant)).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str, tenant: Option<u32>) -> u64 {
        self.counters.get(&MetricKey::new(name, tenant)).copied().unwrap_or(0)
    }

    /// Appends a `(cycle, value)` sample to the named gauge series.
    pub fn gauge_push(&mut self, name: &str, tenant: Option<u32>, cycle: u64, value: f64) {
        self.gauges.entry(MetricKey::new(name, tenant)).or_default().push((cycle, value));
    }

    /// The recorded series of a gauge (empty if never touched).
    pub fn gauge_series(&self, name: &str, tenant: Option<u32>) -> &[(u64, f64)] {
        self.gauges.get(&MetricKey::new(name, tenant)).map_or(&[], Vec::as_slice)
    }

    /// Records one sample into the named histogram.
    pub fn histogram_record(&mut self, name: &str, tenant: Option<u32>, value: u64) {
        self.histograms.entry(MetricKey::new(name, tenant)).or_default().record(value);
    }

    /// Folds a pre-built histogram into the named slot (used when a
    /// component accumulated locally and hands its histogram over at
    /// collection time).
    pub fn histogram_merge(&mut self, name: &str, tenant: Option<u32>, hist: &Histogram) {
        self.histograms.entry(MetricKey::new(name, tenant)).or_default().merge(hist);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str, tenant: Option<u32>) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, tenant))
    }

    /// Re-labels every metric carrying tenant `from` as tenant `to` (values
    /// merge if a `to`-labelled metric already exists). Used when serially
    /// executed single-tenant runs — which all label their kernel tenant 0 —
    /// are chained into one multi-tenant registry.
    pub fn relabel_tenant(&mut self, from: u32, to: u32) {
        if from == to {
            return;
        }
        let keys: Vec<MetricKey> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .filter(|k| k.tenant == Some(from))
            .cloned()
            .collect();
        for key in keys {
            let new_key = MetricKey::new(&key.name, Some(to));
            if let Some(v) = self.counters.remove(&key) {
                *self.counters.entry(new_key.clone()).or_insert(0) += v;
            }
            if let Some(series) = self.gauges.remove(&key) {
                self.gauges.entry(new_key.clone()).or_default().extend(series);
            }
            if let Some(hist) = self.histograms.remove(&key) {
                self.histograms.entry(new_key).or_default().merge(&hist);
            }
        }
    }

    /// Shifts every gauge cycle stamp by `offset` (serial-run chaining).
    pub fn shift_cycles(&mut self, offset: u64) {
        for series in self.gauges.values_mut() {
            for (cycle, _) in series.iter_mut() {
                *cycle += offset;
            }
        }
    }

    /// Merges another registry into this one: counters add, gauge series
    /// concatenate, histograms fold.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (key, v) in other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (key, series) in other.gauges {
            self.gauges.entry(key).or_default().extend(series);
        }
        for (key, hist) in other.histograms {
            self.histograms.entry(key).or_default().merge(&hist);
        }
    }

    /// Deterministic *canonical* JSON export:
    ///
    /// ```json
    /// {
    ///   "counters": {"name/tenant0": 12, ...},
    ///   "gauges": {"name/tenant0": [[cycle, value], ...], ...},
    ///   "histograms": {"name": {"count": n, "sum": s, "min": m, "max": M,
    ///                            "buckets": [[bucket_lo, count], ...]}, ...}
    /// }
    /// ```
    ///
    /// Metrics whose name carries an `engine` path segment (e.g.
    /// `engine/skipped-boundaries`, `chip3/engine/sleeps`) describe how the
    /// simulation was *computed*, not what it computed, and legitimately
    /// differ across timing backends — they are excluded here so the
    /// canonical export stays backend-invariant, mirroring how
    /// engine-category trace events are excluded from the canonical trace.
    /// Use [`MetricsRegistry::to_json_full`] to include them.
    pub fn to_json(&self) -> String {
        self.json_export(false)
    }

    /// [`MetricsRegistry::to_json`] including `engine/` metrics — the
    /// diagnostic export for humans and tooling that want to see how much
    /// work the timing backend actually did.
    pub fn to_json_full(&self) -> String {
        self.json_export(true)
    }

    /// True when `name` denotes an engine-internal (backend-dependent)
    /// metric: any `/`-separated segment equals `engine`, so fleet chip
    /// prefixes (`chip3/engine/...`) are still recognised.
    fn is_engine_metric(name: &str) -> bool {
        name.split('/').any(|segment| segment == "engine")
    }

    fn json_export(&self, include_engine: bool) -> String {
        let keep = |key: &MetricKey| include_engine || !Self::is_engine_metric(&key.name);
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (key, v) in self.counters.iter().filter(|(k, _)| keep(k)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            out.push_str(&key.label());
            out.push_str("\": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        first = true;
        for (key, series) in self.gauges.iter().filter(|(k, _)| keep(k)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            out.push_str(&key.label());
            out.push_str("\": [");
            for (i, (cycle, value)) in series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{cycle},{value:?}]"));
            }
            out.push(']');
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        first = true;
        for (key, hist) in self.histograms.iter().filter(|(k, _)| keep(k)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    \"");
            out.push_str(&key.label());
            out.push_str("\": {\"count\": ");
            out.push_str(&hist.count().to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&hist.sum().to_string());
            out.push_str(", \"min\": ");
            out.push_str(&hist.min().unwrap_or(0).to_string());
            out.push_str(", \"max\": ");
            out.push_str(&hist.max().unwrap_or(0).to_string());
            out.push_str(", \"buckets\": [");
            for (i, (lo, count)) in hist.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lo},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bucket boundaries the log2 scheme promises: 0 → bucket 0, powers
    /// of two open a new bucket, `2^i - 1` stays in the previous one.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..Histogram::NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            if let Some(hi) = hi {
                assert_eq!(Histogram::bucket_index(hi - 1), i, "hi-1 of bucket {i}");
                assert_eq!(Histogram::bucket_index(hi), i + 1, "hi of bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut a = Histogram::new();
        assert_eq!(a.min(), None);
        assert_eq!(a.mean(), None);
        for v in [0, 1, 4, 5, 1000] {
            a.record(v);
        }
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 1010);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.mean(), Some(202.0));
        assert_eq!(a.bucket_count(0), 1);
        assert_eq!(a.bucket_count(3), 2); // 4 and 5 share [4, 8)

        let mut b = Histogram::new();
        b.record(2048);
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.max(), Some(2048));
        assert_eq!(a.nonzero_buckets(), vec![(0, 1), (1, 1), (4, 2), (512, 1), (2048, 1)]);
    }

    #[test]
    fn registry_round_trip_and_merge() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.counter_add("throttles", Some(1), 2);
        m.counter_add("throttles", Some(1), 1);
        m.gauge_push("l2-hit-rate", Some(0), 500, 0.75);
        m.histogram_record("mem-latency", None, 120);
        assert_eq!(m.counter("throttles", Some(1)), 3);
        assert_eq!(m.counter("throttles", Some(0)), 0);
        assert_eq!(m.gauge_series("l2-hit-rate", Some(0)), &[(500, 0.75)]);
        assert_eq!(m.histogram("mem-latency", None).unwrap().count(), 1);

        let mut other = MetricsRegistry::new();
        other.counter_add("throttles", Some(1), 5);
        other.gauge_push("l2-hit-rate", Some(0), 1000, 0.5);
        other.histogram_record("mem-latency", None, 2);
        m.merge(other);
        assert_eq!(m.counter("throttles", Some(1)), 8);
        assert_eq!(m.gauge_series("l2-hit-rate", Some(0)), &[(500, 0.75), (1000, 0.5)]);
        assert_eq!(m.histogram("mem-latency", None).unwrap().count(), 2);

        m.shift_cycles(100);
        assert_eq!(m.gauge_series("l2-hit-rate", Some(0)), &[(600, 0.75), (1100, 0.5)]);
    }

    /// Pins the JSON export byte for byte, and checks it parses with the
    /// vendored JSON parser.
    #[test]
    fn json_export_is_pinned_and_parses() {
        let mut m = MetricsRegistry::new();
        m.counter_add("decisions", None, 4);
        m.counter_add("throttles", Some(0), 1);
        m.gauge_push("l2-hit-rate", Some(0), 500, 0.75);
        m.gauge_push("l2-hit-rate", Some(0), 1000, 0.5);
        m.histogram_record("mem-latency", Some(1), 0);
        m.histogram_record("mem-latency", Some(1), 100);
        let json = m.to_json();
        let expected = concat!(
            "{\n",
            "  \"counters\": {\n",
            "    \"decisions\": 4,\n",
            "    \"throttles/tenant0\": 1\n",
            "  },\n",
            "  \"gauges\": {\n",
            "    \"l2-hit-rate/tenant0\": [[500,0.75],[1000,0.5]]\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"mem-latency/tenant1\": {\"count\": 2, \"sum\": 100, \"min\": 0, ",
            "\"max\": 100, \"buckets\": [[0,1],[64,1]]}\n",
            "  }\n",
            "}\n",
        );
        assert_eq!(json, expected);

        let value: serde::Value = serde_json::from_str(&json).expect("metrics JSON parses");
        assert!(value.get("counters").is_some());
        assert!(value.get("gauges").is_some());
        assert!(value.get("histograms").is_some());
    }

    #[test]
    fn engine_metrics_only_appear_in_the_full_export() {
        let mut m = MetricsRegistry::new();
        m.counter_add("decisions", None, 2);
        m.counter_add("engine/skipped-boundaries", None, 7);
        m.counter_add("chip3/engine/sleeps", None, 1);
        let canonical = m.to_json();
        assert!(canonical.contains("\"decisions\": 2"));
        assert!(!canonical.contains("engine"), "canonical export must stay backend-invariant");
        let full = m.to_json_full();
        assert!(full.contains("\"engine/skipped-boundaries\": 7"));
        assert!(full.contains("\"chip3/engine/sleeps\": 1"));
        assert!(full.contains("\"decisions\": 2"));
    }

    #[test]
    fn empty_registry_exports_empty_objects() {
        let json = MetricsRegistry::new().to_json();
        assert_eq!(json, "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
        let value: serde::Value = serde_json::from_str(&json).expect("parses");
        assert!(value.get("counters").is_some());
    }
}
