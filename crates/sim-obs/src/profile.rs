//! Wall-clock phase profiler: scoped timers around the engine's real phases
//! (parallel SM phase, fabric passes, sharded bank service, reply release,
//! event-loop pop/advance), aggregated into a per-phase call/total/self-time
//! table.
//!
//! Wall clocks are machine-dependent, so nothing here may ever enter a
//! `SimResult` — the profile lives in `ObsReport` only and is rendered as a
//! human-readable table. Phases nest: time spent in an inner phase is
//! subtracted from the enclosing phase's *self* time, so the table's
//! self-time column sums to (roughly) the total measured wall clock.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregated timing for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time inside the phase, nested phases included.
    pub total: Duration,
    /// Wall time inside the phase minus time in nested phases.
    pub self_time: Duration,
}

/// One in-flight phase on the stack.
#[derive(Debug)]
struct OpenPhase {
    name: &'static str,
    started: Instant,
    /// Wall time consumed by already-closed nested phases.
    child_time: Duration,
}

/// The profiler. Disabled (`enabled == false`, the default) it is inert —
/// `enter`/`exit` return immediately, so the engine can call them
/// unconditionally from hot loops.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    stack: Vec<OpenPhase>,
    phases: BTreeMap<&'static str, PhaseStat>,
}

impl PhaseProfiler {
    /// An inert profiler (every call is a no-op).
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// A collecting profiler.
    pub fn enabled() -> Self {
        PhaseProfiler { enabled: true, ..PhaseProfiler::default() }
    }

    /// Whether the profiler collects.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a phase. Phases may nest; close them in LIFO order with
    /// [`PhaseProfiler::exit`].
    pub fn enter(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.stack.push(OpenPhase { name, started: Instant::now(), child_time: Duration::ZERO });
    }

    /// Closes the innermost open phase, folding its timing into the table.
    pub fn exit(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(open) = self.stack.pop() else {
            debug_assert!(false, "PhaseProfiler::exit with no open phase");
            return;
        };
        let total = open.started.elapsed();
        let stat = self.phases.entry(open.name).or_default();
        stat.calls += 1;
        stat.total += total;
        stat.self_time += total.saturating_sub(open.child_time);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_time += total;
        }
    }

    /// Times a closure as one phase occurrence.
    pub fn scope<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.enter(name);
        let out = f();
        self.exit();
        out
    }

    /// The aggregated stats for one phase, if it ever ran.
    pub fn stat(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.get(name)
    }

    /// `(name, stat)` rows sorted by descending self time (ties broken by
    /// name, so rendering is deterministic).
    pub fn rows(&self) -> Vec<(&'static str, PhaseStat)> {
        let mut rows: Vec<_> = self.phases.iter().map(|(&n, &s)| (n, s)).collect();
        rows.sort_by(|a, b| b.1.self_time.cmp(&a.1.self_time).then(a.0.cmp(b.0)));
        rows
    }

    /// Folds another profiler's table into this one (stacks must be empty —
    /// merge finished profiles, not in-flight ones).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        debug_assert!(self.stack.is_empty() && other.stack.is_empty());
        self.enabled |= other.enabled;
        for (&name, stat) in &other.phases {
            let mine = self.phases.entry(name).or_default();
            mine.calls += stat.calls;
            mine.total += stat.total;
            mine.self_time += stat.self_time;
        }
    }

    /// Renders the self-time table: one row per phase, sorted by descending
    /// self time, with a percentage column over the summed self time.
    pub fn render(&self) -> String {
        let rows = self.rows();
        if rows.is_empty() {
            return String::from("(no phases profiled)\n");
        }
        let grand_self: Duration = rows.iter().map(|(_, s)| s.self_time).sum();
        let name_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
        let mut out = format!(
            "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>6}\n",
            "phase", "calls", "total", "self", "self%"
        );
        for (name, stat) in &rows {
            let pct = if grand_self.is_zero() {
                0.0
            } else {
                100.0 * stat.self_time.as_secs_f64() / grand_self.as_secs_f64()
            };
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>5.1}%\n",
                name,
                stat.calls,
                format_duration(stat.total),
                format_duration(stat.self_time),
                pct,
            ));
        }
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>6}\n",
            "(sum)",
            "",
            "",
            format_duration(grand_self),
            "100.0%"
        ));
        out
    }
}

/// Human-scaled duration: `1.234s`, `56.789ms`, `12.3µs`, `456ns`.
fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1_000_000.0)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = PhaseProfiler::new();
        assert!(!p.is_enabled());
        p.enter("phase");
        p.exit();
        p.scope("other", || ());
        assert!(p.rows().is_empty());
        assert_eq!(p.render(), "(no phases profiled)\n");
    }

    #[test]
    fn nesting_attributes_self_time_to_the_inner_phase() {
        let mut p = PhaseProfiler::enabled();
        p.enter("outer");
        p.scope("inner", || std::thread::sleep(Duration::from_millis(5)));
        p.exit();

        let outer = *p.stat("outer").expect("outer recorded");
        let inner = *p.stat("inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(inner.self_time >= Duration::from_millis(4));
        // The outer phase's total includes the inner phase, but its self
        // time excludes it.
        assert!(outer.total >= inner.total);
        assert!(outer.self_time < inner.self_time);
    }

    #[test]
    fn merge_adds_calls_and_times() {
        let mut a = PhaseProfiler::enabled();
        a.scope("x", || ());
        let mut b = PhaseProfiler::enabled();
        b.scope("x", || ());
        b.scope("y", || ());
        a.merge(&b);
        assert_eq!(a.stat("x").unwrap().calls, 2);
        assert_eq!(a.stat("y").unwrap().calls, 1);
    }

    #[test]
    fn render_lists_every_phase_with_header_and_sum() {
        let mut p = PhaseProfiler::enabled();
        p.scope("bank-service", || std::thread::sleep(Duration::from_micros(100)));
        p.scope("deliver", || ());
        let table = p.render();
        assert!(table.starts_with("phase"));
        assert!(table.contains("bank-service"));
        assert!(table.contains("deliver"));
        assert!(table.contains("(sum)"));
        assert!(table.contains("100.0%"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(456)), "456ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(format_duration(Duration::from_millis(56)), "56.000ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000s");
    }
}
