//! Structured sim-time tracing: typed spans/instants on per-unit tracks,
//! recorded into a bounded ring buffer and exported as Chrome trace-event
//! JSON (the `{"traceEvents": [...]}` shape Perfetto and `chrome://tracing`
//! load directly).
//!
//! Determinism contract: the exporter sorts events by their full content
//! before writing, so any two runs producing the same *multiset* of events
//! serialise to byte-identical JSON — regardless of the interleaving host
//! threads recorded them in. Events that are inherently backend-specific
//! (event-queue pops, idle-skip stretches) carry
//! [`TraceCategory::Engine`] and are excluded from the canonical export.

/// Which determinism class an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Simulated-machine behaviour: identical across host thread counts and
    /// timing backends. Included in the canonical export.
    Sim,
    /// Engine mechanics (event-queue pops, bulk idle skips): meaningful for
    /// debugging one backend, but not backend-invariant. Excluded from the
    /// canonical export unless explicitly requested.
    Engine,
}

/// The track (Perfetto "thread") an event renders on. Each variant maps to a
/// fixed, deterministic `tid` so track identity never depends on discovery
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// One streaming multiprocessor (busy stretches, CTA lifetimes).
    Sm(u32),
    /// One L2/DRAM bank (per-request service spans).
    Bank(u32),
    /// The shared request-direction crossbar fabric.
    FabricRequest,
    /// The shared reply-direction crossbar fabric.
    FabricReply,
    /// One tenant's decision timeline (admit/place/throttle/restore
    /// instants).
    Tenant(u32),
    /// The chip-level dispatcher's own timeline (every decision instant).
    Dispatcher,
    /// Engine mechanics (event-queue pops, idle skips).
    Engine,
}

impl Track {
    /// The stable Perfetto thread id of this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Sm(i) => 1_000 + i as u64,
            Track::Bank(i) => 2_000 + i as u64,
            Track::FabricRequest => 3_000,
            Track::FabricReply => 3_001,
            Track::Tenant(t) => 4_000 + t as u64,
            Track::Dispatcher => 4_999,
            Track::Engine => 5_000,
        }
    }

    /// The human-readable track name shown in the Perfetto timeline.
    /// `tenants` supplies per-tenant display names (falling back to the
    /// tenant id).
    pub fn display_name(self, tenants: &[String]) -> String {
        match self {
            Track::Sm(i) => format!("SM {i}"),
            Track::Bank(i) => format!("L2 bank {i}"),
            Track::FabricRequest => "fabric request".to_string(),
            Track::FabricReply => "fabric reply".to_string(),
            Track::Tenant(t) => match tenants.get(t as usize) {
                Some(name) => format!("tenant {t}: {name}"),
                None => format!("tenant {t}"),
            },
            Track::Dispatcher => "dispatcher".to_string(),
            Track::Engine => "engine".to_string(),
        }
    }
}

/// One recorded event: a span (`dur > 0`) or an instant (`dur == 0`) at a
/// simulated cycle on a [`Track`], optionally attributed to a tenant and
/// carrying one numeric argument (bytes, a flag — name-specific).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event starts at.
    pub cycle: u64,
    /// Span length in cycles; `0` renders as an instant.
    pub dur: u64,
    /// The track the event renders on.
    pub track: Track,
    /// Event name (a static label such as `"busy"`, `"l2-miss"`,
    /// `"throttle"`).
    pub name: &'static str,
    /// The tenant the event is attributed to, if any.
    pub tenant: Option<u32>,
    /// Determinism class (see [`TraceCategory`]).
    pub category: TraceCategory,
    /// One optional numeric argument; meaning is name-specific (fabric
    /// transfers record bytes, L2 misses record DRAM row-hit 0/1).
    pub arg: Option<u64>,
}

impl TraceEvent {
    /// A simulated-machine span.
    pub fn span(
        track: Track,
        name: &'static str,
        cycle: u64,
        dur: u64,
        tenant: Option<u32>,
    ) -> Self {
        TraceEvent { cycle, dur, track, name, tenant, category: TraceCategory::Sim, arg: None }
    }

    /// A simulated-machine instant.
    pub fn instant(track: Track, name: &'static str, cycle: u64, tenant: Option<u32>) -> Self {
        TraceEvent { cycle, dur: 0, track, name, tenant, category: TraceCategory::Sim, arg: None }
    }

    /// Attaches the numeric argument.
    pub fn with_arg(mut self, arg: u64) -> Self {
        self.arg = Some(arg);
        self
    }

    /// Marks the event as engine mechanics (see [`TraceCategory::Engine`]).
    pub fn engine(mut self) -> Self {
        self.category = TraceCategory::Engine;
        self
    }

    /// The full-content sort key the canonical exporter orders by.
    fn sort_key(&self) -> (u64, u64, TraceCategory, &'static str, u64, u32, u64) {
        (
            self.cycle,
            self.track.tid(),
            self.category,
            self.name,
            self.dur,
            self.tenant.map_or(u32::MAX, |t| t),
            self.arg.map_or(u64::MAX, |a| a),
        )
    }
}

/// A sink for trace events. The engine crates hold `Option<TraceRecorder>`
/// fields — `None` (the `--obs off` / `metrics` configuration) costs one
/// branch per would-be event.
pub trait Tracer {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// Whether recording is active (lets callers skip building expensive
    /// events).
    fn enabled(&self) -> bool {
        true
    }
}

/// Default ring-buffer capacity of a [`TraceRecorder`] (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// A bounded ring-buffer event recorder: the newest `capacity` events are
/// kept, older ones are dropped (counted in [`TraceRecorder::dropped`]) so a
/// long run cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder { events: Vec::new(), capacity: capacity.max(1), start: 0, dropped: 0 }
    }

    /// A recorder with [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the held events in recording order.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let start = std::mem::take(&mut self.start);
        let mut events = std::mem::take(&mut self.events);
        events.rotate_left(start);
        events
    }
}

impl Tracer for TraceRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Exports events as canonical Chrome trace-event JSON.
///
/// * Events are **sorted by full content** (cycle, track, category, name,
///   duration, tenant, argument) — two runs recording the same multiset of
///   events produce byte-identical output whatever order the recorders saw
///   them in. This is what the cross-backend / cross-thread-count
///   determinism tests compare.
/// * [`TraceCategory::Engine`] events are excluded unless `include_engine`
///   is set (they are backend-specific by nature).
/// * One `thread_name` metadata record is emitted per present track, so
///   Perfetto shows named SM / bank / fabric / tenant tracks; `tenants`
///   supplies tenant display names.
/// * Cycles map 1:1 to the trace's microsecond timestamps (`ts`/`dur`).
pub fn chrome_trace_json(
    events: &[TraceEvent],
    tenants: &[String],
    include_engine: bool,
) -> String {
    let mut selected: Vec<&TraceEvent> =
        events.iter().filter(|e| include_engine || e.category == TraceCategory::Sim).collect();
    selected.sort_by_key(|e| e.sort_key());

    let mut tracks: Vec<Track> = selected.iter().map(|e| e.track).collect();
    tracks.sort_by_key(|t| t.tid());
    tracks.dedup();

    let mut out = String::with_capacity(64 + selected.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };

    let mut line = String::new();
    line.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"ciao-sim\"}}",
    );
    emit(&mut out, &line);
    for track in &tracks {
        line.clear();
        line.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        line.push_str(&track.tid().to_string());
        line.push_str(",\"args\":{\"name\":");
        push_json_str(&mut line, &track.display_name(tenants));
        line.push_str("}}");
        emit(&mut out, &line);
    }

    for ev in &selected {
        line.clear();
        line.push_str("{\"name\":");
        push_json_str(&mut line, ev.name);
        line.push_str(",\"cat\":");
        push_json_str(
            &mut line,
            match ev.category {
                TraceCategory::Sim => "sim",
                TraceCategory::Engine => "engine",
            },
        );
        if ev.dur > 0 {
            line.push_str(",\"ph\":\"X\",\"ts\":");
            line.push_str(&ev.cycle.to_string());
            line.push_str(",\"dur\":");
            line.push_str(&ev.dur.to_string());
        } else {
            line.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            line.push_str(&ev.cycle.to_string());
        }
        line.push_str(",\"pid\":0,\"tid\":");
        line.push_str(&ev.track.tid().to_string());
        line.push_str(",\"args\":{");
        let mut first_arg = true;
        if let Some(t) = ev.tenant {
            line.push_str("\"tenant\":");
            line.push_str(&t.to_string());
            first_arg = false;
        }
        if let Some(a) = ev.arg {
            if !first_arg {
                line.push(',');
            }
            line.push_str("\"arg\":");
            line.push_str(&a.to_string());
        }
        line.push_str("}}");
        emit(&mut out, &line);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::span(Track::Sm(1), "busy", 0, 40, Some(0)),
            TraceEvent::span(Track::Bank(0), "l2-miss", 12, 200, Some(1)).with_arg(0),
            TraceEvent::instant(Track::Dispatcher, "throttle", 512, Some(1)),
            TraceEvent::instant(Track::Tenant(1), "throttle", 512, Some(1)),
            TraceEvent::span(Track::FabricRequest, "req", 10, 3, Some(0)).with_arg(128),
            TraceEvent::instant(Track::Engine, "pop", 64, None).engine(),
        ]
    }

    /// Pins the exported trace-event JSON shape byte for byte (the
    /// observability analogue of the SimResult v2 schema pin): metadata
    /// first, canonical event order, span/instant phases, tenant/arg args.
    #[test]
    fn chrome_trace_json_shape_is_pinned() {
        let json = chrome_trace_json(
            &sample_events(),
            &[String::from("atax"), String::from("kmn")],
            false,
        );
        let expected = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"ciao-sim\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1001,\"args\":{\"name\":\"SM 1\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2000,\"args\":{\"name\":\"L2 bank 0\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":3000,\"args\":{\"name\":\"fabric request\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":4001,\"args\":{\"name\":\"tenant 1: kmn\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":4999,\"args\":{\"name\":\"dispatcher\"}},\n",
            "{\"name\":\"busy\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":0,\"dur\":40,\"pid\":0,\"tid\":1001,\"args\":{\"tenant\":0}},\n",
            "{\"name\":\"req\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":10,\"dur\":3,\"pid\":0,\"tid\":3000,\"args\":{\"tenant\":0,\"arg\":128}},\n",
            "{\"name\":\"l2-miss\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":12,\"dur\":200,\"pid\":0,\"tid\":2000,\"args\":{\"tenant\":1,\"arg\":0}},\n",
            "{\"name\":\"throttle\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":512,\"pid\":0,\"tid\":4001,\"args\":{\"tenant\":1}},\n",
            "{\"name\":\"throttle\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":512,\"pid\":0,\"tid\":4999,\"args\":{\"tenant\":1}}\n",
            "]}\n",
        );
        assert_eq!(json, expected);
    }

    /// The canonical export is order-independent: any permutation of the
    /// same events serialises to identical bytes.
    #[test]
    fn export_is_permutation_invariant() {
        let events = sample_events();
        let tenants = vec![String::from("a"), String::from("b")];
        let base = chrome_trace_json(&events, &tenants, true);
        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(chrome_trace_json(&reversed, &tenants, true), base);
        let mut rotated = events;
        rotated.rotate_left(3);
        assert_eq!(chrome_trace_json(&rotated, &tenants, true), base);
    }

    #[test]
    fn engine_events_excluded_from_canonical_export() {
        let events = sample_events();
        let canonical = chrome_trace_json(&events, &[], false);
        let full = chrome_trace_json(&events, &[], true);
        assert!(!canonical.contains("\"pop\""));
        assert!(full.contains("\"pop\""));
        assert!(full.contains("\"cat\":\"engine\""));
    }

    /// The export parses as JSON (via the vendored parser) with the
    /// documented top-level shape.
    #[test]
    fn export_round_trips_through_a_json_parser() {
        let json = chrome_trace_json(&sample_events(), &[], true);
        let value: serde::Value = serde_json::from_str(&json).expect("trace JSON parses");
        let events = match value.get("traceEvents") {
            Some(serde::Value::Array(items)) => items,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // 1 process_name + 6 thread_name (engine track included) + 6 events.
        assert_eq!(events.len(), 13);
        for ev in events {
            assert!(ev.get("name").is_some());
            assert!(ev.get("ph").is_some());
            assert!(ev.get("pid").is_some());
            assert!(ev.get("tid").is_some());
        }
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let mut rec = TraceRecorder::new(3);
        for i in 0..5u64 {
            rec.record(TraceEvent::instant(Track::Sm(0), "tick", i, None));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let cycles: Vec<u64> = rec.take().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(rec.is_empty());
    }

    #[test]
    fn track_tids_are_disjoint() {
        let tracks = [
            Track::Sm(0),
            Track::Sm(999),
            Track::Bank(0),
            Track::Bank(255),
            Track::FabricRequest,
            Track::FabricReply,
            Track::Tenant(0),
            Track::Tenant(998),
            Track::Dispatcher,
            Track::Engine,
        ];
        let mut tids: Vec<u64> = tracks.iter().map(|t| t.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), tracks.len());
    }
}
