//! # sim-obs — observability layer for the CIAO simulator
//!
//! Three independent layers, threaded through the engine crates and the
//! harness:
//!
//! * [`trace`] — structured **sim-time tracing**: a zero-cost-when-disabled
//!   [`trace::Tracer`] with a ring-buffer [`trace::TraceRecorder`] capturing
//!   typed spans and instants (SM busy stretches, CTA lifetimes, bank
//!   service, fabric link transfers, dispatch decisions, event-queue pops)
//!   keyed by `(cycle, unit, tenant)`, exported as Chrome trace-event JSON
//!   loadable in [Perfetto](https://ui.perfetto.dev) with one track per
//!   SM / L2 bank / fabric direction and one per tenant.
//! * [`metrics`] — a **metrics registry**: named counters, cycle-stamped
//!   gauges and log2-bucket histograms with per-tenant labels, exported as
//!   deterministic JSON. Subsumes ad-hoc series like the dispatch log's
//!   per-tenant L2-hit-rate windows.
//! * [`profile`] — a **wall-clock phase profiler**: scoped timers around the
//!   engine's real phases (parallel SM phase, fabric passes, sharded bank
//!   service, reply release, event-loop pop/advance) aggregated into a
//!   self-time table, so epoch-vs-event hotspots are measured rather than
//!   inferred.
//!
//! Sim-time traces and metrics are **deterministic** — bit-identical across
//! host thread counts and across the epoch/event timing backends (the
//! exporter sorts canonically and backend-specific events carry the
//! [`trace::TraceCategory::Engine`] category, excluded from the canonical
//! export). Wall-clock profiling never enters simulation results.
//!
//! The crate is dependency-free by design: engines embed recorders in hot
//! paths, so depending on it must cost nothing, and `off` compiles down to
//! an `Option` check per would-be event.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{chip_metric, Histogram, MetricsRegistry};
pub use profile::{PhaseProfiler, PhaseStat};
pub use trace::{chrome_trace_json, TraceCategory, TraceEvent, TraceRecorder, Tracer, Track};

/// How much observability a run collects. Parsed from the harness `--obs`
/// flag; threaded through every engine entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// No collection at all: every recorder stays `None`, every hot-path
    /// hook is a single branch. The perf-gate configuration.
    #[default]
    Off,
    /// Metrics registry and phase profiler only — no event trace. Cheap
    /// enough for routine runs.
    Metrics,
    /// Everything: metrics, profiler and the full sim-time event trace.
    Full,
}

impl ObsLevel {
    /// Every level, in increasing-cost order.
    pub const ALL: [ObsLevel; 3] = [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Full];

    /// The stable lowercase label used on the command line
    /// (`off` / `metrics` / `full`).
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Metrics => "metrics",
            ObsLevel::Full => "full",
        }
    }

    /// Parses a [`ObsLevel::label`] back into the level.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "off" => Some(ObsLevel::Off),
            "metrics" => Some(ObsLevel::Metrics),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// Whether the metrics registry (and the phase profiler) collect.
    pub fn metrics_enabled(self) -> bool {
        self >= ObsLevel::Metrics
    }

    /// Whether the sim-time event trace records.
    pub fn trace_enabled(self) -> bool {
        self == ObsLevel::Full
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything one observed run collected: the trace events, the metrics
/// registry and the wall-clock phase profile, plus the tenant names the
/// trace exporter uses to label per-tenant tracks.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// The level the run collected at.
    pub level: ObsLevel,
    /// Every recorded trace event (unsorted; the exporter sorts
    /// canonically). Empty below [`ObsLevel::Full`].
    pub events: Vec<TraceEvent>,
    /// Trace events the ring buffers dropped on overflow (0 = complete).
    pub dropped_events: u64,
    /// Tenant names in tenant-id order, used to label per-tenant tracks.
    pub tenants: Vec<String>,
    /// The metrics registry. Empty below [`ObsLevel::Metrics`].
    pub metrics: MetricsRegistry,
    /// The wall-clock phase profile. Never serialised into simulation
    /// results — wall clocks are machine-dependent.
    pub profile: PhaseProfiler,
}

impl ObsReport {
    /// An empty report at the given level.
    pub fn new(level: ObsLevel) -> Self {
        ObsReport { level, ..ObsReport::default() }
    }

    /// The canonical Chrome trace-event JSON export of the run's sim-time
    /// events (deterministic; excludes [`TraceCategory::Engine`] events).
    /// Load the returned string in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events, &self.tenants, false)
    }

    /// The metrics registry as deterministic JSON (canonical export:
    /// engine-internal metrics excluded, so the output is identical across
    /// timing backends).
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }

    /// The metrics registry as deterministic JSON *including* engine
    /// metrics (`engine/skipped-boundaries` etc.), which are backend
    /// dependent by design. This is what file artifacts for humans carry.
    pub fn metrics_json_full(&self) -> String {
        self.metrics.to_json_full()
    }

    /// The wall-clock phase profile as an aligned text table.
    pub fn profile_table(&self) -> String {
        self.profile.render()
    }

    /// Shifts every event cycle and gauge stamp by `offset` — used when
    /// serially executed per-kernel runs are chained into one timeline (the
    /// `exclusive` dispatch policy).
    pub fn shift_cycles(&mut self, offset: u64) {
        for ev in &mut self.events {
            ev.cycle += offset;
        }
        self.metrics.shift_cycles(offset);
    }

    /// Re-labels tenant `from` as tenant `to` across trace events (both the
    /// `tenant` attribution and the per-tenant track) and metrics. Used
    /// before merging serially executed single-tenant runs, which each label
    /// their kernel tenant 0, into one multi-tenant report.
    pub fn relabel_tenant(&mut self, from: u32, to: u32) {
        if from == to {
            return;
        }
        for ev in &mut self.events {
            if ev.tenant == Some(from) {
                ev.tenant = Some(to);
            }
            if ev.track == Track::Tenant(from) {
                ev.track = Track::Tenant(to);
            }
        }
        self.metrics.relabel_tenant(from, to);
    }

    /// Merges another report into this one: events concatenate, metrics
    /// merge, profiles merge, tenant names extend (later names win on
    /// overlap only by filling gaps).
    pub fn merge(&mut self, other: ObsReport) {
        self.level = self.level.max(other.level);
        self.events.extend(other.events);
        self.dropped_events += other.dropped_events;
        if self.tenants.len() < other.tenants.len() {
            self.tenants = other.tenants;
        }
        self.metrics.merge(other.metrics);
        self.profile.merge(&other.profile);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip_and_order() {
        for level in ObsLevel::ALL {
            assert_eq!(ObsLevel::from_label(level.label()), Some(level));
            assert_eq!(level.to_string(), level.label());
        }
        assert_eq!(ObsLevel::from_label("verbose"), None);
        assert!(ObsLevel::Off < ObsLevel::Metrics);
        assert!(ObsLevel::Metrics < ObsLevel::Full);
        assert!(!ObsLevel::Off.metrics_enabled());
        assert!(!ObsLevel::Off.trace_enabled());
        assert!(ObsLevel::Metrics.metrics_enabled());
        assert!(!ObsLevel::Metrics.trace_enabled());
        assert!(ObsLevel::Full.metrics_enabled());
        assert!(ObsLevel::Full.trace_enabled());
    }

    #[test]
    fn report_shift_and_merge() {
        let mut a = ObsReport::new(ObsLevel::Full);
        a.events.push(TraceEvent::span(Track::Sm(0), "busy", 10, 5, Some(0)));
        a.metrics.gauge_push("g", Some(0), 10, 1.0);
        a.shift_cycles(100);
        assert_eq!(a.events[0].cycle, 110);

        let mut b = ObsReport::new(ObsLevel::Metrics);
        b.tenants = vec!["x".into(), "y".into()];
        b.metrics.counter_add("c", None, 3);
        a.merge(b);
        assert_eq!(a.level, ObsLevel::Full);
        assert_eq!(a.tenants.len(), 2);
        assert_eq!(a.events.len(), 1);
    }
}
