//! Minimal offline stand-in for `serde_json`, matching the API surface this
//! workspace uses: [`to_string_pretty`] and [`from_str`]. Operates on the
//! [`serde::Value`] tree produced by the sibling `serde` shim.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Error for serialization or parsing failures.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes a value as compact (single-line) JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_value_compact(out: &mut String, v: &Value) {
    match v {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value_compact(out, val);
            }
            out.push('}');
        }
        scalar => write_value(out, scalar, 0),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            if !items.is_empty() {
                self.expect(b',')?;
            }
            items.push(self.parse_value()?);
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(pairs));
            }
            if !pairs.is_empty() {
                self.expect(b',')?;
                self.skip_ws();
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a low surrogate escape must
                                // follow immediately (UTF-16 pair encoding of
                                // non-BMP characters, as emitted by e.g.
                                // Python's json.dumps).
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error("unpaired high surrogate".into()));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(Error("unpaired low surrogate".into()));
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid utf-8 in string".into()))?,
                    );
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self.bytes.get(at..at + 4).ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let json = to_string_pretty(&vec![1i32, 2, 3]).unwrap();
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn parses_nested_object() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\n"], "b": null}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Value::Null));
        match v.get("a") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_surrogate_pairs() {
        // A surrogate-pair escape is how ensure_ascii serializers emit U+1F600.
        let input = "\"\\ud83d\\ude00!\"";
        let back: String = from_str(input).unwrap();
        assert_eq!(back, "\u{1F600}!");
        assert!(from_str::<String>(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(from_str::<String>(r#""\ude00""#).is_err(), "unpaired low surrogate");
    }

    #[test]
    fn rejects_out_of_range_floats_as_ints() {
        assert!(from_str::<u8>("300.0").is_err());
        assert!(from_str::<i32>("-3000000000.0").is_err());
        let x: u8 = from_str("250.0").unwrap();
        assert_eq!(x, 250);
    }

    #[test]
    fn to_string_is_compact() {
        assert_eq!(to_string(&vec![1i32, 2, 3]).unwrap(), "[1,2,3]");
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Bool(true)]))]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[true]}"#);
    }

    #[test]
    fn escapes_strings() {
        let json = to_string_pretty(&"he\"llo\n".to_string()).unwrap();
        assert_eq!(json, "\"he\\\"llo\\n\"");
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, "he\"llo\n");
    }
}
