//! Minimal offline stand-in for `proptest`, covering the surface this
//! workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), integer-range / tuple / `collection::vec`
//! strategies, `any::<T>()`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real proptest this shim does straight random sampling with a
//! per-test deterministic seed and no shrinking: failures print the sampled
//! inputs via the assertion message instead of a minimized counterexample.

#![deny(missing_docs)]

use rand::{Rng as _, SampleRange, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Deterministic per-test RNG, backed by the `rand` shim's generator (like
/// the real proptest, which drives its sampling with `rand`).
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Seeds the RNG from a test's module path + name (FNV-1a hash), so every
    /// test explores a stable but distinct sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Range sampling delegates to the `rand` shim so the span arithmetic lives in
// exactly one place.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_from(self.clone(), &mut rng.0)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_from(self.clone(), &mut rng.0)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces a strategy over a type's full value space (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-space strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<f64>()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a random length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Builds a `Vec` strategy: element strategy plus a length range
    /// (`vec(0u64..512, 1..300)`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Defines sampling-based property tests. Mirrors `proptest::proptest!`:
/// an optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    // Mirror real proptest: the body runs in a closure that
                    // may `return Ok(())` to skip a case early. Assertion
                    // macros panic directly, so `Err` never materializes.
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!("proptest case failed: {}", __msg);
                    }
                }
            }
        )*
    };
}
