//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim. Parses the derive input with the bare `proc_macro`
//! token API (no `syn`/`quote`, which are unavailable without a registry) and
//! emits impls of the shim's `to_value`/`from_value` traits.
//!
//! Supported shapes — everything this workspace derives on:
//! structs with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, newtype/tuple, or struct-like. Generic types and
//! `#[serde(...)]` attributes are intentionally unsupported and panic with a
//! clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives the shim's `Serialize` (`to_value`) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = item_name(&item);
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    );
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives the shim's `Deserialize` (`from_value`) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = item_name(&item);
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    );
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    match next_ident(&mut it).as_deref() {
        Some("struct") => {
            let name = next_ident(&mut it).expect("serde_derive: struct name");
            reject_generics(&mut it, &name);
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected token after struct {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        Some("enum") => {
            let name = next_ident(&mut it).expect("serde_derive: enum name");
            reject_generics(&mut it, &name);
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: expected struct or enum, got {other:?}"),
    }
}

/// Skips `#[...]` attributes (doc comments included) and `pub`/`pub(...)`.
fn skip_attrs_and_vis(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn next_ident(it: &mut Tokens) -> Option<String> {
    match it.next() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn reject_generics(it: &mut Tokens, name: &str) {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type {name} is not supported by the offline shim");
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(name) = next_ident(&mut it) else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field {name}, got {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut it);
    }
    fields
}

/// Consumes a type expression up to (and including) the next top-level comma.
/// Commas inside `<...>` (e.g. `HashMap<String, u64>`) are not separators.
fn skip_type_until_comma(it: &mut Tokens) {
    let mut angle_depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts comma-separated fields of a tuple struct/variant.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut it);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        let Some(name) = next_ident(&mut it) else { break };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                it.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_top_level_fields(g.stream()));
                it.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type_until_comma(&mut it);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn object_literal(pairs: &[(String, String)]) -> String {
    let mut out = String::from("::serde::Value::Object(::std::vec![");
    for (key, value_expr) in pairs {
        let _ = write!(out, "(::std::string::String::from(\"{key}\"), {value_expr}),");
    }
    out.push_str("])");
    out
}

fn serialize_struct(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let pairs: Vec<(String, String)> = names
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            object_literal(&pairs)
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut out = String::from("::serde::Value::Array(::std::vec![");
            for i in 0..*n {
                let _ = write!(out, "::serde::Serialize::to_value(&self.{i}),");
            }
            out.push_str("])");
            out
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = writeln!(
                    out,
                    "{name}::{vn} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                );
            }
            Fields::Named(fields) => {
                let bindings = fields.join(", ");
                let pairs: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                    .collect();
                let inner = object_literal(&pairs);
                let tagged = object_literal(&[(vn.clone(), inner)]);
                let _ = writeln!(out, "{name}::{vn} {{ {bindings} }} => {tagged},");
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let bindings = binds.join(", ");
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let mut arr = String::from("::serde::Value::Array(::std::vec![");
                    for b in &binds {
                        let _ = write!(arr, "::serde::Serialize::to_value({b}),");
                    }
                    arr.push_str("])");
                    arr
                };
                let tagged = object_literal(&[(vn.clone(), inner)]);
                let _ = writeln!(out, "{name}::{vn}({bindings}) => {tagged},");
            }
        }
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn deserialize_named_fields(path: &str, fields: &[String], source: &str) -> String {
    let mut out = format!("::std::result::Result::Ok({path} {{\n");
    for f in fields {
        let _ = writeln!(
            out,
            "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\").ok_or_else(|| \
             ::serde::DeError::new(\"missing field `{f}`\"))?)?,"
        );
    }
    out.push_str("})");
    out
}

fn deserialize_tuple_fields(path: &str, n: usize, source: &str) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({path}(::serde::Deserialize::from_value({source})?))"
        );
    }
    let mut out = format!(
        "match {source} {{\n\
         ::serde::Value::Array(items) if items.len() == {n} => \
         ::std::result::Result::Ok({path}("
    );
    for i in 0..n {
        let _ = write!(out, "::serde::Deserialize::from_value(&items[{i}])?,");
    }
    let _ = write!(
        out,
        ")),\n_ => ::std::result::Result::Err(::serde::DeError::new(\
         \"expected {n}-element array for {path}\")),\n}}"
    );
    out
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => deserialize_named_fields(name, names, "v"),
        Fields::Tuple(n) => deserialize_tuple_fields(name, *n, "v"),
        Fields::Unit => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::DeError::new(\
             \"expected null for unit struct {name}\")) }}"
        ),
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = writeln!(unit_arms, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),");
            }
            Fields::Named(fields) => {
                let body = deserialize_named_fields(&format!("{name}::{vn}"), fields, "inner");
                let _ = writeln!(payload_arms, "\"{vn}\" => {{ {body} }},");
            }
            Fields::Tuple(n) => {
                let body = deserialize_tuple_fields(&format!("{name}::{vn}"), *n, "inner");
                let _ = writeln!(payload_arms, "\"{vn}\" => {{ {body} }},");
            }
        }
    }
    format!(
        "match v {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"unknown variant `{{other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
         let (tag, inner) = &pairs[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n\
         {payload_arms}\
         other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"unknown variant `{{other}}` for {name}\"))),\n\
         }}\n\
         }},\n\
         other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"expected enum {name}, got {{other:?}}\"))),\n\
         }}"
    )
}
