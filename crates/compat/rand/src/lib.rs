//! Minimal offline stand-in for `rand` 0.8, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen::<f64>()`, and
//! `Rng::gen_range` over integer ranges. Deterministic by construction
//! (xoshiro256** seeded through SplitMix64), which is exactly what the
//! workload generator wants: the same spec always yields the same trace.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Concrete RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// Core + convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`rng.gen_range(0..n)` / `(lo..=hi)`).
    ///
    /// # Panics
    /// Panics on an empty range, like the real `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
