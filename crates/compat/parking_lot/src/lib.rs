//! Minimal offline stand-in for `parking_lot`: the same lock API the
//! workspace uses (`Mutex::lock` returning a guard directly, no poison
//! `Result`), implemented over `std::sync`. Poisoned locks are recovered
//! rather than propagated, matching `parking_lot`'s poison-free semantics.

#![deny(missing_docs)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Poison-free reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
