//! Minimal offline stand-in for `criterion`, covering the surface the bench
//! crate uses: `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Reports mean wall-clock time per iteration — no statistics, HTML
//! reports, or saved baselines.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup { name, sample_size: 100 }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id.as_ref(), 100, f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.as_ref()), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    // Warm-up pass; also lets the closure run at least once even if timing
    // later proves too coarse.
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    if iters > 0 {
        let per_iter = total / (iters as u32).max(1);
        println!("{id:<60} {per_iter:>12.2?}/iter ({iters} iters)");
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`. Sub-microsecond routines are run in
    /// batches inside one timed region so clock granularity and `Instant`
    /// overhead don't dominate the per-iteration figure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let single = start.elapsed();
        if single >= Duration::from_micros(5) {
            self.elapsed += single;
            self.iters = 1;
            return;
        }
        const BATCH: u64 = 512;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters = BATCH;
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
