//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the workspace vendors a small serialization facade with the
//! same import surface the codebase uses: `use serde::{Serialize,
//! Deserialize};` plus `#[derive(Serialize, Deserialize)]`. Types serialize
//! into the JSON-like [`Value`] tree, which the sibling `serde_json` shim
//! renders and parses.
//!
//! When registry access becomes available, swapping this out for the real
//! `serde` is a one-line change per entry in `[workspace.dependencies]`.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// JSON-like value tree produced by [`Serialize`] and consumed by
/// [`Deserialize`]. Object fields keep insertion order so derived structs
/// round-trip in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (distinct from `Int` so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted back into a type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor used by derived code.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    // `f.abs() < i128::MAX as f64` guarantees the i128 cast
                    // is exact, so try_from does the precise range check
                    // instead of `as` silently saturating.
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < i128::MAX as f64 => {
                        <$t>::try_from(*f as i128)
                            .map_err(|_| DeError::new(format!("{f} out of range")))
                    }
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    Value::Float(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f < u128::MAX as f64 =>
                    {
                        <$t>::try_from(*f as u128)
                            .map_err(|_| DeError::new(format!("{f} out of range")))
                    }
                    other => Err(DeError::new(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain a `'static` borrow. Static-str fields only
    /// occur in small constant tables (Table II rows), so the leak is bounded
    /// and acceptable for a test/report shim.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                // len checked above, so the conversion cannot fail.
                Ok(<[T; N]>::try_from(parsed).unwrap())
            }
            other => Err(DeError::new(format!("expected {N}-element array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(it.next().ok_or_else(|| {
                                DeError::new("tuple too short")
                            })?)?,
                        )+);
                        Ok(out)
                    }
                    other => Err(DeError::new(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
