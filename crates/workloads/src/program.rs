//! Generic spec-driven warp program generator.
//!
//! [`PatternProgram`] expands a [`PatternSpec`] into a deterministic stream
//! of `WarpOp`s on the fly (no trace materialisation), using a per-warp
//! `StdRng` seeded from the spec so every re-simulation of the same benchmark
//! replays the same trace regardless of scheduler.

use crate::spec::{Divergence, PatternSpec, RegionAccess, RegionSpec};
use gpu_mem::Addr;
use gpu_sim::trace::{MemPattern, MemSpace, WarpOp, WarpProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-region cursor state.
#[derive(Debug, Clone, Copy)]
struct RegionCursor {
    offset: u64,
}

/// A `WarpProgram` generated from a [`PatternSpec`].
pub struct PatternProgram {
    spec: PatternSpec,
    rng: StdRng,
    cursors: Vec<RegionCursor>,
    weight_total: f64,
    emitted: usize,
    /// Scratchpad size used to wrap shared-memory lane addresses.
    shared_mem_bytes: u32,
}

impl PatternProgram {
    /// Builds a program from `spec`. Panics (in debug builds) if the spec is
    /// malformed; see [`PatternSpec::validate`].
    pub fn new(spec: PatternSpec) -> Self {
        debug_assert!(spec.validate().is_empty(), "invalid spec: {:?}", spec.validate());
        let rng = StdRng::seed_from_u64(spec.seed);
        let cursors = spec.regions.iter().map(|_| RegionCursor { offset: 0 }).collect();
        let weight_total =
            spec.regions.iter().map(|r| r.weight).sum::<f64>().max(f64::MIN_POSITIVE);
        PatternProgram { spec, rng, cursors, weight_total, emitted: 0, shared_mem_bytes: 48 * 1024 }
    }

    /// The spec driving this program.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    fn pick_region(&mut self) -> usize {
        let mut x = self.rng.gen::<f64>() * self.weight_total;
        for (i, r) in self.spec.regions.iter().enumerate() {
            if x < r.weight {
                return i;
            }
            x -= r.weight;
        }
        self.spec.regions.len() - 1
    }

    fn advance_cursor(rng: &mut StdRng, cursor: &mut RegionCursor, region: &RegionSpec) -> u64 {
        match region.access {
            RegionAccess::Stream { advance } | RegionAccess::Reuse { advance } => {
                let off = cursor.offset;
                cursor.offset = (cursor.offset + advance) % region.size;
                off
            }
            RegionAccess::Random => {
                let blocks = (region.size / 128).max(1);
                (rng.gen_range(0..blocks)) * 128
            }
        }
    }

    fn mem_pattern(&mut self, region_idx: usize) -> MemPattern {
        let region = self.spec.regions[region_idx];
        let offset = Self::advance_cursor(&mut self.rng, &mut self.cursors[region_idx], &region);
        let base: Addr = region.base + offset;
        match region.divergence {
            Divergence::Coalesced => MemPattern::Strided { base, stride: 4, lanes: 32 },
            Divergence::Strided { lane_stride } => {
                MemPattern::Strided { base, stride: lane_stride as i64, lanes: 32 }
            }
            Divergence::Scatter { lanes } => {
                let blocks = (region.size / 128).max(1);
                let addrs =
                    (0..lanes).map(|_| region.base + self.rng.gen_range(0..blocks) * 128).collect();
                MemPattern::Scatter(addrs)
            }
        }
    }

    fn global_mem_op(&mut self) -> WarpOp {
        let region_idx = self.pick_region();
        let pattern = self.mem_pattern(region_idx);
        if self.rng.gen::<f64>() < self.spec.store_ratio {
            WarpOp::Store { space: MemSpace::Global, pattern }
        } else {
            WarpOp::Load { space: MemSpace::Global, pattern }
        }
    }

    fn shared_mem_op(&mut self) -> WarpOp {
        let base = self.rng.gen_range(0..self.shared_mem_bytes.max(128) as u64 / 128) * 128;
        let pattern = MemPattern::Strided { base, stride: 4, lanes: 32 };
        if self.rng.gen::<f64>() < 0.5 {
            WarpOp::Load { space: MemSpace::Shared, pattern }
        } else {
            WarpOp::Store { space: MemSpace::Shared, pattern }
        }
    }

    fn compute_op(&mut self) -> WarpOp {
        let (lo, hi) = self.spec.compute_latency;
        WarpOp::Compute { cycles: self.rng.gen_range(lo..=hi) }
    }
}

impl WarpProgram for PatternProgram {
    fn next_op(&mut self) -> Option<WarpOp> {
        if self.emitted >= self.spec.total_ops {
            return None;
        }
        self.emitted += 1;

        if let Some(every) = self.spec.barrier_every {
            if every > 0 && self.emitted.is_multiple_of(every) {
                return Some(WarpOp::Barrier);
            }
        }

        let x = self.rng.gen::<f64>();
        let op = if x < self.spec.mem_ratio && !self.spec.regions.is_empty() {
            self.global_mem_op()
        } else if x < self.spec.mem_ratio + self.spec.shared_mem_ratio {
            self.shared_mem_op()
        } else {
            self.compute_op()
        };
        Some(op)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.spec.total_ops - self.emitted) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RegionSpec;

    fn mem_spec(seed: u64) -> PatternSpec {
        let mut s = PatternSpec::compute_only(2000, seed);
        s.mem_ratio = 0.5;
        s.store_ratio = 0.2;
        s.regions.push(RegionSpec::private_stream(0, 64 * 1024));
        s.regions.push(RegionSpec::shared_reuse(1 << 22, 8 * 1024, 0.5));
        s
    }

    fn drain(mut p: PatternProgram) -> Vec<WarpOp> {
        let mut ops = Vec::new();
        while let Some(op) = p.next_op() {
            ops.push(op);
        }
        ops
    }

    #[test]
    fn emits_exactly_total_ops() {
        let ops = drain(PatternProgram::new(mem_spec(1)));
        assert_eq!(ops.len(), 2000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = drain(PatternProgram::new(mem_spec(42)));
        let b = drain(PatternProgram::new(mem_spec(42)));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = drain(PatternProgram::new(mem_spec(1)));
        let b = drain(PatternProgram::new(mem_spec(2)));
        assert_ne!(a, b);
    }

    #[test]
    fn mem_ratio_roughly_respected() {
        let ops = drain(PatternProgram::new(mem_spec(3)));
        let mem = ops.iter().filter(|o| o.is_global_mem()).count() as f64 / ops.len() as f64;
        assert!((0.4..0.6).contains(&mem), "observed global-mem ratio {mem}");
    }

    #[test]
    fn store_ratio_roughly_respected() {
        let ops = drain(PatternProgram::new(mem_spec(4)));
        let (mut loads, mut stores) = (0usize, 0usize);
        for op in &ops {
            match op {
                WarpOp::Load { space: MemSpace::Global, .. } => loads += 1,
                WarpOp::Store { space: MemSpace::Global, .. } => stores += 1,
                _ => {}
            }
        }
        let ratio = stores as f64 / (loads + stores) as f64;
        assert!((0.1..0.3).contains(&ratio), "observed store ratio {ratio}");
    }

    #[test]
    fn barriers_inserted_at_interval() {
        let mut s = PatternSpec::compute_only(100, 9);
        s.barrier_every = Some(10);
        let ops = drain(PatternProgram::new(s));
        let barriers = ops.iter().filter(|o| matches!(o, WarpOp::Barrier)).count();
        assert_eq!(barriers, 10);
    }

    #[test]
    fn compute_only_spec_has_no_memory_ops() {
        let ops = drain(PatternProgram::new(PatternSpec::compute_only(500, 11)));
        assert!(ops.iter().all(|o| matches!(o, WarpOp::Compute { .. })));
    }

    #[test]
    fn shared_mem_ratio_generates_scratchpad_ops() {
        let mut s = PatternSpec::compute_only(2000, 5);
        s.shared_mem_ratio = 0.3;
        let ops = drain(PatternProgram::new(s));
        let shared = ops.iter().filter(|o| o.is_shared_mem()).count() as f64 / ops.len() as f64;
        assert!((0.2..0.4).contains(&shared), "observed shared ratio {shared}");
    }

    #[test]
    fn stream_region_advances_and_wraps() {
        let mut s = PatternSpec::compute_only(64, 6);
        s.mem_ratio = 1.0;
        s.regions.push(RegionSpec {
            base: 0x1000,
            size: 512,
            weight: 1.0,
            access: RegionAccess::Stream { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        let ops = drain(PatternProgram::new(s));
        let bases: Vec<Addr> = ops
            .iter()
            .filter_map(|o| match o {
                WarpOp::Load { pattern: MemPattern::Strided { base, .. }, .. }
                | WarpOp::Store { pattern: MemPattern::Strided { base, .. }, .. } => Some(*base),
                _ => None,
            })
            .collect();
        assert!(!bases.is_empty());
        // All bases stay within the region and revisit the start (wrap).
        assert!(bases.iter().all(|&b| (0x1000..0x1000 + 512).contains(&b)));
        assert!(bases.iter().filter(|&&b| b == 0x1000).count() >= 2, "expected wrap-around reuse");
    }

    #[test]
    fn scatter_divergence_emits_scatter_patterns() {
        let mut s = PatternSpec::compute_only(200, 8);
        s.mem_ratio = 1.0;
        s.regions.push(RegionSpec {
            base: 0,
            size: 1 << 20,
            weight: 1.0,
            access: RegionAccess::Random,
            divergence: Divergence::Scatter { lanes: 16 },
        });
        let ops = drain(PatternProgram::new(s));
        assert!(ops.iter().any(|o| matches!(
            o,
            WarpOp::Load { pattern: MemPattern::Scatter(_), .. }
                | WarpOp::Store { pattern: MemPattern::Scatter(_), .. }
        )));
    }

    #[test]
    fn remaining_hint_counts_down() {
        let mut p = PatternProgram::new(PatternSpec::compute_only(5, 0));
        assert_eq!(p.remaining_hint(), Some(5));
        p.next_op();
        p.next_op();
        assert_eq!(p.remaining_hint(), Some(3));
    }
}
