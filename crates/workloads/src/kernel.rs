//! Workload kernel: ties a benchmark's launch geometry to its per-warp
//! pattern specifications.
//!
//! A warp's behaviour is described as one or more *phases*, each a
//! [`PatternSpec`]; phases execute back to back. Multi-phase warps reproduce
//! applications such as ATAX whose kernels switch from a memory-intensive
//! phase to a compute-intensive phase mid-execution (Fig. 9 of the paper).

use crate::program::PatternProgram;
use crate::spec::PatternSpec;
use gpu_mem::CtaId;
use gpu_sim::kernel::{Kernel, KernelInfo};
use gpu_sim::trace::{WarpOp, WarpProgram};
use std::sync::Arc;

/// A `WarpProgram` that runs a sequence of [`PatternProgram`] phases.
pub struct PhasedProgram {
    phases: Vec<PatternProgram>,
    current: usize,
}

impl PhasedProgram {
    /// Builds a program from phase specs (must be non-empty).
    pub fn new(specs: Vec<PatternSpec>) -> Self {
        assert!(!specs.is_empty(), "a warp needs at least one phase");
        PhasedProgram { phases: specs.into_iter().map(PatternProgram::new).collect(), current: 0 }
    }
}

impl WarpProgram for PhasedProgram {
    fn next_op(&mut self) -> Option<WarpOp> {
        while self.current < self.phases.len() {
            if let Some(op) = self.phases[self.current].next_op() {
                return Some(op);
            }
            self.current += 1;
        }
        None
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(
            self.phases[self.current.min(self.phases.len() - 1)..]
                .iter()
                .filter_map(|p| p.remaining_hint())
                .sum(),
        )
    }
}

/// A kernel whose warps execute spec-driven synthetic programs.
///
/// The spec factory receives `(cta, warp_in_cta)` and must be deterministic;
/// it returns the warp's phases in execution order.
pub struct WorkloadKernel {
    info: KernelInfo,
    spec_factory: Arc<dyn Fn(CtaId, usize) -> Vec<PatternSpec> + Send + Sync>,
}

impl WorkloadKernel {
    /// Creates a workload kernel from launch geometry and a spec factory.
    pub fn new<F>(info: KernelInfo, spec_factory: F) -> Self
    where
        F: Fn(CtaId, usize) -> Vec<PatternSpec> + Send + Sync + 'static,
    {
        WorkloadKernel { info, spec_factory: Arc::new(spec_factory) }
    }

    /// Convenience constructor for single-phase workloads.
    pub fn single_phase<F>(info: KernelInfo, spec_factory: F) -> Self
    where
        F: Fn(CtaId, usize) -> PatternSpec + Send + Sync + 'static,
    {
        WorkloadKernel { info, spec_factory: Arc::new(move |c, w| vec![spec_factory(c, w)]) }
    }

    /// Builds the phase specs of a particular warp (exposed for tests and
    /// workload analysis).
    pub fn specs_of(&self, cta: CtaId, warp_in_cta: usize) -> Vec<PatternSpec> {
        (self.spec_factory)(cta, warp_in_cta)
    }
}

impl Kernel for WorkloadKernel {
    fn info(&self) -> KernelInfo {
        self.info.clone()
    }

    fn warp_program(&self, cta: CtaId, warp_in_cta: usize) -> Box<dyn WarpProgram> {
        Box::new(PhasedProgram::new((self.spec_factory)(cta, warp_in_cta)))
    }
}

/// Derives a stable per-warp seed from a benchmark seed, CTA and warp index.
pub fn warp_seed(benchmark_seed: u64, cta: CtaId, warp_in_cta: usize) -> u64 {
    // SplitMix64-style mixing keeps neighbouring warps decorrelated.
    let mut z = benchmark_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + cta as u64))
        .wrapping_add(0x94d0_49bb_1331_11ebu64.wrapping_mul(1 + warp_in_cta as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RegionSpec;

    fn info() -> KernelInfo {
        KernelInfo { name: "wk".into(), num_ctas: 2, warps_per_cta: 3, shared_mem_per_cta: 512 }
    }

    fn factory(cta: CtaId, w: usize) -> PatternSpec {
        let mut s = PatternSpec::compute_only(100, warp_seed(7, cta, w));
        s.mem_ratio = 0.4;
        s.regions.push(RegionSpec::private_stream((cta as u64 * 8 + w as u64) << 16, 8 * 1024));
        s
    }

    #[test]
    fn kernel_exposes_info_and_programs() {
        let k = WorkloadKernel::single_phase(info(), factory);
        assert_eq!(k.info().total_warps(), 6);
        let mut p = k.warp_program(0, 0);
        assert!(p.next_op().is_some());
    }

    #[test]
    fn specs_differ_across_warps_but_are_stable() {
        let k = WorkloadKernel::single_phase(info(), factory);
        assert_ne!(k.specs_of(0, 0)[0].seed, k.specs_of(0, 1)[0].seed);
        assert_ne!(k.specs_of(0, 0)[0].seed, k.specs_of(1, 0)[0].seed);
        assert_eq!(k.specs_of(1, 2), k.specs_of(1, 2));
    }

    #[test]
    fn phased_program_runs_phases_in_order() {
        let compute = PatternSpec::compute_only(5, 1);
        let mut mem = PatternSpec::compute_only(5, 2);
        mem.mem_ratio = 1.0;
        mem.regions.push(RegionSpec::private_stream(0, 4096));
        let mut p = PhasedProgram::new(vec![compute, mem]);
        assert_eq!(p.remaining_hint(), Some(10));
        let mut ops = Vec::new();
        while let Some(op) = p.next_op() {
            ops.push(op);
        }
        assert_eq!(ops.len(), 10);
        assert!(ops[..5].iter().all(|o| matches!(o, WarpOp::Compute { .. })));
        assert!(ops[5..].iter().all(|o| o.is_global_mem()));
    }

    #[test]
    fn multi_phase_factory_supported() {
        let k = WorkloadKernel::new(info(), |c, w| {
            vec![
                PatternSpec::compute_only(3, warp_seed(1, c, w)),
                PatternSpec::compute_only(4, warp_seed(2, c, w)),
            ]
        });
        assert_eq!(k.specs_of(0, 0).len(), 2);
        let mut p = k.warp_program(0, 0);
        let mut n = 0;
        while p.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 7);
    }

    #[test]
    fn warp_seed_mixing_is_stable_and_spread() {
        assert_eq!(warp_seed(1, 2, 3), warp_seed(1, 2, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..16u32).flat_map(|c| (0..8usize).map(move |w| warp_seed(99, c, w))).collect();
        assert_eq!(seeds.len(), 16 * 8, "seeds must be unique");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedProgram::new(vec![]);
    }
}
