//! The [`Benchmark`] enum: one variant per Table II row, with constructors
//! for the corresponding synthetic kernel and accessors for the paper's
//! reported characteristics.

use crate::characteristics::{lookup, BenchmarkClass, BenchmarkInfo};
use crate::kernel::WorkloadKernel;
use crate::suites::{mars, polybench, rodinia};
use serde::{Deserialize, Serialize};

/// Controls how large the synthetic runs are, trading fidelity for speed.
///
/// The default corresponds to the runs used in EXPERIMENTS.md; `quick()` is
/// used by unit/integration tests and CI-style smoke benches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Dynamic operations each warp executes (per phase the budget is split).
    pub ops_per_warp: usize,
    /// Multiplier applied to every region size (1.0 = the sizes the suite
    /// modules were calibrated with).
    pub footprint_scale: f64,
    /// Experiment-level seed mixed into every per-warp RNG seed, so a whole
    /// experiment can be replicated across seeds (`--seed N` in the harness).
    /// `0` (the default) reproduces the historical single-seed traces bit for
    /// bit.
    pub seed: u64,
}

impl ScaleConfig {
    /// The full-size configuration used for the reported experiments.
    pub fn full() -> Self {
        ScaleConfig { ops_per_warp: 3000, footprint_scale: 1.0, seed: 0 }
    }

    /// A reduced configuration for tests and smoke runs (~4x faster).
    pub fn quick() -> Self {
        ScaleConfig { ops_per_warp: 700, footprint_scale: 1.0, seed: 0 }
    }

    /// A tiny configuration for property tests and doc examples.
    pub fn tiny() -> Self {
        ScaleConfig { ops_per_warp: 120, footprint_scale: 0.5, seed: 0 }
    }

    /// Returns a copy with the experiment seed set.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// The 21 benchmarks of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Atax,
    Bicg,
    Mvt,
    Kmn,
    Kmeans,
    Gesummv,
    Syr2k,
    Syrk,
    Ii,
    Pvc,
    Ss,
    Sm,
    Wc,
    Gaussian,
    Conv2d,
    Corr,
    Backprop,
    Hotspot,
    Lud,
    Nn,
    Nw,
}

impl Benchmark {
    /// All benchmarks in Table II order.
    pub fn all() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            Atax, Bicg, Mvt, Kmn, Kmeans, Gesummv, Syr2k, Syrk, Ii, Pvc, Ss, Wc, Sm, Gaussian,
            Conv2d, Corr, Backprop, Hotspot, Lud, Nn, Nw,
        ]
    }

    /// The memory-intensive benchmarks used by the sensitivity study (Fig. 11)
    /// and the configuration study (Fig. 12): the LWS and SWS classes.
    pub fn memory_intensive() -> Vec<Benchmark> {
        Benchmark::all().into_iter().filter(|b| b.class() != BenchmarkClass::Ci).collect()
    }

    /// The paper's name for the benchmark (Table II spelling).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Atax => "ATAX",
            Benchmark::Bicg => "BICG",
            Benchmark::Mvt => "MVT",
            Benchmark::Kmn => "KMN",
            Benchmark::Kmeans => "Kmeans",
            Benchmark::Gesummv => "GESUMMV",
            Benchmark::Syr2k => "SYR2K",
            Benchmark::Syrk => "SYRK",
            Benchmark::Ii => "II",
            Benchmark::Pvc => "PVC",
            Benchmark::Ss => "SS",
            Benchmark::Sm => "SM",
            Benchmark::Wc => "WC",
            Benchmark::Gaussian => "Gaussian",
            Benchmark::Conv2d => "2DCONV",
            Benchmark::Corr => "CORR",
            Benchmark::Backprop => "Backprop",
            Benchmark::Hotspot => "Hotspot",
            Benchmark::Lud => "Lud",
            Benchmark::Nn => "NN",
            Benchmark::Nw => "NW",
        }
    }

    /// Parses a paper-style benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The Table II row for this benchmark.
    pub fn info(self) -> &'static BenchmarkInfo {
        lookup(self.name()).expect("every benchmark has a Table II row")
    }

    /// The working-set class (Table II).
    pub fn class(self) -> BenchmarkClass {
        self.info().class
    }

    /// The best static wavefront-limiting value `Nwrp` (Table II), used to
    /// configure Best-SWL.
    pub fn best_swl_warps(self) -> usize {
        self.info().nwrp
    }

    /// Builds the synthetic kernel reproducing this benchmark's behaviour.
    pub fn kernel(self, scale: &ScaleConfig) -> WorkloadKernel {
        match self {
            Benchmark::Atax => polybench::atax(scale),
            Benchmark::Bicg => polybench::bicg(scale),
            Benchmark::Mvt => polybench::mvt(scale),
            Benchmark::Gesummv => polybench::gesummv(scale),
            Benchmark::Syr2k => polybench::syr2k(scale),
            Benchmark::Syrk => polybench::syrk(scale),
            Benchmark::Conv2d => polybench::conv2d(scale),
            Benchmark::Corr => polybench::corr(scale),
            Benchmark::Kmn => mars::kmn(scale),
            Benchmark::Ii => mars::ii(scale),
            Benchmark::Pvc => mars::pvc(scale),
            Benchmark::Ss => mars::ss(scale),
            Benchmark::Sm => mars::sm(scale),
            Benchmark::Wc => mars::wc(scale),
            Benchmark::Kmeans => rodinia::kmeans(scale),
            Benchmark::Gaussian => rodinia::gaussian(scale),
            Benchmark::Backprop => rodinia::backprop(scale),
            Benchmark::Hotspot => rodinia::hotspot(scale),
            Benchmark::Lud => rodinia::lud(scale),
            Benchmark::Nn => rodinia::nn(scale),
            Benchmark::Nw => rodinia::nw(scale),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;

    #[test]
    fn twenty_one_variants() {
        assert_eq!(Benchmark::all().len(), 21);
        let unique: std::collections::HashSet<_> = Benchmark::all().into_iter().collect();
        assert_eq!(unique.len(), 21);
    }

    #[test]
    fn every_benchmark_has_table2_info_and_builds_a_kernel() {
        let scale = ScaleConfig::tiny();
        for b in Benchmark::all() {
            let info = b.info();
            assert_eq!(info.name, b.name());
            let kernel = b.kernel(&scale);
            assert_eq!(kernel.info().name, b.name());
            assert!(kernel.info().total_warps() > 0);
            assert!(b.best_swl_warps() >= 1);
        }
    }

    #[test]
    fn name_round_trips() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Benchmark::from_name("does-not-exist"), None);
    }

    #[test]
    fn memory_intensive_excludes_ci() {
        let mi = Benchmark::memory_intensive();
        assert_eq!(mi.len(), 13);
        assert!(mi.iter().all(|b| b.class() != BenchmarkClass::Ci));
    }

    #[test]
    fn scale_configs_ordered_by_size() {
        assert!(ScaleConfig::full().ops_per_warp > ScaleConfig::quick().ops_per_warp);
        assert!(ScaleConfig::quick().ops_per_warp > ScaleConfig::tiny().ops_per_warp);
        assert_eq!(ScaleConfig::default(), ScaleConfig::full());
    }

    #[test]
    fn class_partition_matches_table2() {
        use BenchmarkClass::*;
        let count = |c: BenchmarkClass| Benchmark::all().iter().filter(|b| b.class() == c).count();
        assert_eq!(count(Lws), 5);
        assert_eq!(count(Sws), 8);
        assert_eq!(count(Ci), 8);
    }
}
