//! Table II of the paper: benchmark characteristics.
//!
//! `APKI` is L1D accesses per kilo-instruction, `Nwrp` the number of active
//! warps giving the best performance under static wavefront limiting
//! (Best-SWL), and `Fsmem` the fraction of shared memory used by the
//! application on the baseline GPU. The class column groups benchmarks into
//! large-working-set (LWS), small-working-set (SWS) and compute-intensive
//! (CI) applications, which is the axis along which the paper's results are
//! presented (Fig. 8).

use serde::{Deserialize, Serialize};

/// Working-set class of a benchmark (Table II, "Class").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkClass {
    /// Large working set: thrashes the L1D and the shared-memory cache alike.
    Lws,
    /// Small working set: fits in L1D + repurposed shared memory.
    Sws,
    /// Compute-intensive: few memory accesses per instruction.
    Ci,
}

impl BenchmarkClass {
    /// Short label used in tables and figures ("LWS", "SWS", "CI").
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkClass::Lws => "LWS",
            BenchmarkClass::Sws => "SWS",
            BenchmarkClass::Ci => "CI",
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkInfo {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Benchmark suite the application comes from.
    pub suite: &'static str,
    /// L1D accesses per kilo-instruction reported in Table II.
    pub apki: f64,
    /// Input size reported in Table II.
    pub input: &'static str,
    /// Number of active warps achieving the highest performance for Best-SWL.
    pub nwrp: usize,
    /// Fraction of shared memory used by the application (0.0–1.0).
    pub fsmem: f64,
    /// Whether the application uses CTA-wide barriers.
    pub barriers: bool,
    /// Working-set class.
    pub class: BenchmarkClass,
}

/// The 21 rows of Table II.
pub const TABLE2: &[BenchmarkInfo] = &[
    BenchmarkInfo {
        name: "ATAX",
        suite: "PolyBench",
        apki: 64.0,
        input: "64MB",
        nwrp: 2,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Lws,
    },
    BenchmarkInfo {
        name: "BICG",
        suite: "PolyBench",
        apki: 64.0,
        input: "64MB",
        nwrp: 2,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Lws,
    },
    BenchmarkInfo {
        name: "MVT",
        suite: "PolyBench",
        apki: 64.0,
        input: "64MB",
        nwrp: 2,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Lws,
    },
    BenchmarkInfo {
        name: "KMN",
        suite: "Mars",
        apki: 46.0,
        input: "168KB",
        nwrp: 4,
        fsmem: 0.01,
        barriers: true,
        class: BenchmarkClass::Lws,
    },
    BenchmarkInfo {
        name: "Kmeans",
        suite: "Rodinia",
        apki: 85.0,
        input: "101MB",
        nwrp: 2,
        fsmem: 0.00,
        barriers: true,
        class: BenchmarkClass::Lws,
    },
    BenchmarkInfo {
        name: "GESUMMV",
        suite: "PolyBench",
        apki: 136.0,
        input: "128MB",
        nwrp: 2,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "SYR2K",
        suite: "PolyBench",
        apki: 108.0,
        input: "48MB",
        nwrp: 6,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "SYRK",
        suite: "PolyBench",
        apki: 94.0,
        input: "512KB",
        nwrp: 6,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "II",
        suite: "Mars",
        apki: 75.0,
        input: "28MB",
        nwrp: 4,
        fsmem: 0.00,
        barriers: true,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "PVC",
        suite: "Mars",
        apki: 64.0,
        input: "13MB",
        nwrp: 48,
        fsmem: 0.33,
        barriers: true,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "SS",
        suite: "Mars",
        apki: 34.0,
        input: "23MB",
        nwrp: 48,
        fsmem: 0.50,
        barriers: true,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "SM",
        suite: "Mars",
        apki: 140.0,
        input: "1MB",
        nwrp: 48,
        fsmem: 0.01,
        barriers: true,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "WC",
        suite: "Mars",
        apki: 19.0,
        input: "88KB",
        nwrp: 48,
        fsmem: 0.01,
        barriers: true,
        class: BenchmarkClass::Sws,
    },
    BenchmarkInfo {
        name: "Gaussian",
        suite: "Rodinia",
        apki: 18.0,
        input: "339KB",
        nwrp: 48,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "2DCONV",
        suite: "PolyBench",
        apki: 9.0,
        input: "64MB",
        nwrp: 36,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "CORR",
        suite: "PolyBench",
        apki: 10.0,
        input: "2MB",
        nwrp: 48,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "Backprop",
        suite: "Rodinia",
        apki: 3.0,
        input: "5MB",
        nwrp: 36,
        fsmem: 0.13,
        barriers: true,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "Hotspot",
        suite: "Rodinia",
        apki: 1.0,
        input: "2MB",
        nwrp: 48,
        fsmem: 0.19,
        barriers: true,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "Lud",
        suite: "Rodinia",
        apki: 2.0,
        input: "25KB",
        nwrp: 38,
        fsmem: 0.50,
        barriers: true,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "NN",
        suite: "Rodinia",
        apki: 8.0,
        input: "334KB",
        nwrp: 48,
        fsmem: 0.00,
        barriers: false,
        class: BenchmarkClass::Ci,
    },
    BenchmarkInfo {
        name: "NW",
        suite: "Rodinia",
        apki: 5.0,
        input: "32MB",
        nwrp: 48,
        fsmem: 0.35,
        barriers: true,
        class: BenchmarkClass::Ci,
    },
];

/// Looks a benchmark up by (case-insensitive) name.
pub fn lookup(name: &str) -> Option<&'static BenchmarkInfo> {
    TABLE2.iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

/// All benchmarks of a given class, in Table II order.
pub fn by_class(class: BenchmarkClass) -> Vec<&'static BenchmarkInfo> {
    TABLE2.iter().filter(|b| b.class == class).collect()
}

/// The memory-intensive benchmarks used in the sensitivity study of Fig. 11
/// (ATAX, GESUMMV, SYR2K, SYRK, BICG, MVT, Kmeans).
pub fn sensitivity_set() -> Vec<&'static BenchmarkInfo> {
    ["ATAX", "GESUMMV", "SYR2K", "SYRK", "BICG", "MVT", "Kmeans"]
        .iter()
        .map(|n| lookup(n).expect("sensitivity benchmark present"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_benchmarks() {
        assert_eq!(TABLE2.len(), 21);
    }

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(by_class(BenchmarkClass::Lws).len(), 5);
        assert_eq!(by_class(BenchmarkClass::Sws).len(), 8);
        assert_eq!(by_class(BenchmarkClass::Ci).len(), 8);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(lookup("atax").unwrap().apki, 64.0);
        assert_eq!(lookup("BACKPROP").unwrap().fsmem, 0.13);
        assert!(lookup("nonexistent").is_none());
    }

    #[test]
    fn sensitivity_set_has_seven_entries() {
        let s = sensitivity_set();
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|b| b.apki >= 46.0), "sensitivity set is memory-intensive");
    }

    #[test]
    fn fsmem_within_bounds_and_ci_benchmarks_have_low_apki() {
        for b in TABLE2 {
            assert!((0.0..=1.0).contains(&b.fsmem), "{}", b.name);
            assert!(b.nwrp >= 1 && b.nwrp <= 48, "{}", b.name);
            if b.class == BenchmarkClass::Ci {
                assert!(b.apki <= 18.0, "{} is CI but has APKI {}", b.name, b.apki);
            }
        }
    }

    #[test]
    fn class_labels() {
        assert_eq!(BenchmarkClass::Lws.label(), "LWS");
        assert_eq!(BenchmarkClass::Sws.label(), "SWS");
        assert_eq!(BenchmarkClass::Ci.label(), "CI");
    }
}
