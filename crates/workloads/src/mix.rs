//! Named multi-tenant benchmark mixes.
//!
//! A [`Mix`] is a curated set of 2–4 Table II benchmarks chosen to stress a
//! particular co-execution regime: cache-sensitive tenants (SWS class — small
//! working sets whose reuse is exactly what inter-tenant interference
//! destroys), streaming tenants (LWS class — large working sets that flood
//! the shared L2 without profiting from it) and compute-intensive tenants
//! (CI class — nearly memory-idle). The harness's `mix` command runs every
//! mix across SM partitioning policies × schedulers and reports which policy
//! best contains the inter-tenant cache interference.
//!
//! Tenant order within a mix is part of its definition: the serial
//! `exclusive` policy executes tenants in this order, and tenant ids in
//! reports follow it.

use crate::benchmarks::{Benchmark, ScaleConfig};
use gpu_sim::{Kernel, OffsetKernel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Byte distance between consecutive tenants' global address spaces. The
/// benchmark suites hard-code their region bases (stream/shared/irregular
/// areas all below 2³²), so without per-tenant offsets two co-running
/// instances would alias each other's data in the shared caches and the mix
/// experiments would measure constructive sharing instead of interference
/// (STP above the tenant count). 2⁴⁰ keeps up to four tenants far apart with
/// no wraparound.
pub const TENANT_ADDRESS_STRIDE: u64 = 1 << 40;

/// The named benchmark mixes of the multi-tenant experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mix {
    /// SYRK × ATAX — a cache-sensitive tenant co-running with a streaming
    /// tenant: the headline interference scenario (the stream evicts the
    /// reused working set).
    CacheStream,
    /// SYRK × GESUMMV — two cache-sensitive tenants competing for the same
    /// shared capacity.
    CacheCache,
    /// ATAX × MVT — two streaming tenants: bandwidth-bound, little to lose
    /// in the caches.
    StreamStream,
    /// SYRK × NN — a cache-sensitive tenant next to a compute-intensive one:
    /// the most benign pairing.
    CacheCompute,
    /// SYRK × ATAX × GESUMMV × NN — a four-tenant consolidation scenario
    /// spanning all three classes.
    Quad,
}

impl Mix {
    /// All mixes, in report order.
    pub fn all() -> Vec<Mix> {
        vec![Mix::CacheStream, Mix::CacheCache, Mix::StreamStream, Mix::CacheCompute, Mix::Quad]
    }

    /// Stable mix name used by reports and the harness CLI.
    pub fn name(self) -> &'static str {
        match self {
            Mix::CacheStream => "cache-stream",
            Mix::CacheCache => "cache-cache",
            Mix::StreamStream => "stream-stream",
            Mix::CacheCompute => "cache-compute",
            Mix::Quad => "quad",
        }
    }

    /// Parses a mix name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Mix> {
        Mix::all().into_iter().find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// The member benchmarks, in tenant order.
    pub fn benchmarks(self) -> Vec<Benchmark> {
        match self {
            Mix::CacheStream => vec![Benchmark::Syrk, Benchmark::Atax],
            Mix::CacheCache => vec![Benchmark::Syrk, Benchmark::Gesummv],
            Mix::StreamStream => vec![Benchmark::Atax, Benchmark::Mvt],
            Mix::CacheCompute => vec![Benchmark::Syrk, Benchmark::Nn],
            Mix::Quad => {
                vec![Benchmark::Syrk, Benchmark::Atax, Benchmark::Gesummv, Benchmark::Nn]
            }
        }
    }

    /// Builds the member kernels at `scale`, in tenant order, each shifted
    /// into its own global address space (tenant `t` at
    /// `t × TENANT_ADDRESS_STRIDE`) so co-running tenants never alias each
    /// other's data. Tenant 0's kernel is byte-identical to the plain
    /// benchmark kernel.
    pub fn kernels(self, scale: &ScaleConfig) -> Vec<Arc<dyn Kernel>> {
        self.benchmarks()
            .into_iter()
            .enumerate()
            .map(|(t, b)| {
                let inner: Arc<dyn Kernel> = Arc::new(b.kernel(scale));
                Arc::new(OffsetKernel::new(inner, t as u64 * TENANT_ADDRESS_STRIDE))
                    as Arc<dyn Kernel>
            })
            .collect()
    }

    /// Staggered arrival cycles for the mix's tenants under the
    /// dynamic-arrivals axis: tenant `t` enters the kernel queue at
    /// `t × stride` cycles (the harness's `--arrivals STRIDE` flag). A stride
    /// of 0 reproduces the static all-at-cycle-0 launch exactly.
    pub fn staggered_arrivals(self, stride: u64) -> Vec<u64> {
        (0..self.benchmarks().len() as u64).map(|t| t * stride).collect()
    }

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            Mix::CacheStream => "cache-sensitive x streaming",
            Mix::CacheCache => "cache-sensitive x cache-sensitive",
            Mix::StreamStream => "streaming x streaming",
            Mix::CacheCompute => "cache-sensitive x compute-intensive",
            Mix::Quad => "4-tenant consolidation (SWS+LWS+SWS+CI)",
        }
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::BenchmarkClass;

    #[test]
    fn names_round_trip() {
        for m in Mix::all() {
            assert_eq!(Mix::from_name(m.name()), Some(m));
            assert_eq!(format!("{m}"), m.name());
            assert!(!m.description().is_empty());
        }
        assert_eq!(Mix::from_name("bogus"), None);
    }

    #[test]
    fn mixes_have_two_to_four_tenants_and_build_kernels() {
        let scale = ScaleConfig::tiny();
        for m in Mix::all() {
            let benchmarks = m.benchmarks();
            assert!((2..=4).contains(&benchmarks.len()), "{m}");
            let kernels = m.kernels(&scale);
            assert_eq!(kernels.len(), benchmarks.len());
            for (k, b) in kernels.iter().zip(&benchmarks) {
                assert_eq!(k.info().name, b.name());
                assert!(k.info().total_warps() > 0);
            }
        }
    }

    #[test]
    fn tenants_live_in_disjoint_address_spaces() {
        use gpu_sim::{MemSpace, WarpOp};
        let scale = ScaleConfig::tiny();
        let kernels = Mix::Quad.kernels(&scale);
        for (t, k) in kernels.iter().enumerate() {
            let lo = t as u64 * TENANT_ADDRESS_STRIDE;
            let hi = lo + TENANT_ADDRESS_STRIDE;
            let mut p = k.warp_program(0, 0);
            while let Some(op) = p.next_op() {
                let (WarpOp::Load { space: MemSpace::Global, pattern }
                | WarpOp::Store { space: MemSpace::Global, pattern }) = op
                else {
                    continue;
                };
                for a in pattern.lane_addresses() {
                    assert!(
                        (lo..hi).contains(&a),
                        "tenant {t} address {a:#x} outside [{lo:#x}, {hi:#x})"
                    );
                }
            }
        }
    }

    #[test]
    fn class_composition_matches_intent() {
        use BenchmarkClass::*;
        let classes =
            |m: Mix| -> Vec<BenchmarkClass> { m.benchmarks().iter().map(|b| b.class()).collect() };
        assert_eq!(classes(Mix::CacheStream), vec![Sws, Lws]);
        assert_eq!(classes(Mix::CacheCache), vec![Sws, Sws]);
        assert_eq!(classes(Mix::StreamStream), vec![Lws, Lws]);
        assert_eq!(classes(Mix::CacheCompute), vec![Sws, Ci]);
        assert_eq!(classes(Mix::Quad), vec![Sws, Lws, Sws, Ci]);
    }
}
