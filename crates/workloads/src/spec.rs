//! Pattern specifications: a compact, declarative description of a warp's
//! dynamic behaviour from which [`crate::program::PatternProgram`] generates
//! the operation stream.
//!
//! A specification is a weighted set of memory *regions*, each with its own
//! access behaviour (streaming, re-referencing a working set, or random), an
//! intra-warp divergence model, plus the scalar knobs that set memory
//! intensity, barrier frequency and scratchpad usage. The suite modules build
//! one spec per (benchmark, CTA, warp); the same spec always expands to the
//! same operation stream.

use gpu_mem::Addr;
use serde::{Deserialize, Serialize};

/// How the lanes of one warp spread within a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Divergence {
    /// All 32 lanes fall into one 128-byte block (stride 4).
    Coalesced,
    /// Lanes are separated by a fixed byte stride (e.g. row-major accesses of
    /// a column: stride = row pitch), producing several blocks per access.
    Strided {
        /// Byte distance between consecutive lanes.
        lane_stride: u32,
    },
    /// Lanes scatter pseudo-randomly within the region (index-array access,
    /// the SpMV-style irregularity discussed in §VI).
    Scatter {
        /// Number of active lanes issuing scattered addresses.
        lanes: u8,
    },
}

/// How successive accesses of a warp move through a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegionAccess {
    /// Stream through the region once (or wrap around), advancing by
    /// `advance` bytes per access: negligible temporal reuse.
    Stream {
        /// Bytes to advance between consecutive accesses.
        advance: u64,
    },
    /// Sweep a working set repeatedly: strong temporal reuse, i.e. "high
    /// potential of data locality" in the paper's terms.
    Reuse {
        /// Bytes to advance between consecutive accesses within the sweep.
        advance: u64,
    },
    /// Pick a pseudo-random block-aligned offset on every access.
    Random,
}

/// One memory region a warp accesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Base global address of the region.
    pub base: Addr,
    /// Region size in bytes (must be at least one cache line).
    pub size: u64,
    /// Relative probability of an access targeting this region.
    pub weight: f64,
    /// Temporal behaviour within the region.
    pub access: RegionAccess,
    /// Spatial (intra-warp) behaviour.
    pub divergence: Divergence,
}

impl RegionSpec {
    /// A private, perfectly coalesced streaming region.
    pub fn private_stream(base: Addr, size: u64) -> Self {
        RegionSpec {
            base,
            size,
            weight: 1.0,
            access: RegionAccess::Stream { advance: 128 },
            divergence: Divergence::Coalesced,
        }
    }

    /// A shared region that warps re-reference (high locality potential).
    pub fn shared_reuse(base: Addr, size: u64, weight: f64) -> Self {
        RegionSpec {
            base,
            size,
            weight,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        }
    }
}

/// Complete description of one warp's behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSpec {
    /// Total dynamic operations the warp executes (including barriers).
    pub total_ops: usize,
    /// Probability that an operation is a global-memory access.
    pub mem_ratio: f64,
    /// Of the global-memory accesses, the fraction that are stores.
    pub store_ratio: f64,
    /// Probability that an operation is a programmer shared-memory
    /// (scratchpad) access — models the `Fsmem`-style scratchpad traffic.
    pub shared_mem_ratio: f64,
    /// Latency range (inclusive) of compute operations, in cycles.
    pub compute_latency: (u32, u32),
    /// Weighted memory regions (at least one when `mem_ratio > 0`).
    pub regions: Vec<RegionSpec>,
    /// Insert a CTA barrier every `n` operations (`None` = no barriers).
    pub barrier_every: Option<usize>,
    /// Seed mixed into the per-warp RNG (derived from benchmark + CTA + warp).
    pub seed: u64,
}

impl PatternSpec {
    /// A minimal compute-only spec (useful as a building block and in tests).
    pub fn compute_only(total_ops: usize, seed: u64) -> Self {
        PatternSpec {
            total_ops,
            mem_ratio: 0.0,
            store_ratio: 0.0,
            shared_mem_ratio: 0.0,
            compute_latency: (1, 4),
            regions: Vec::new(),
            barrier_every: None,
            seed,
        }
    }

    /// Validates internal consistency; returns a list of problems (empty when
    /// the spec is well-formed). Suite builders assert this in debug builds.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.total_ops == 0 {
            problems.push("total_ops must be positive".into());
        }
        for r in [self.mem_ratio, self.store_ratio, self.shared_mem_ratio] {
            if !(0.0..=1.0).contains(&r) {
                problems.push(format!("ratio {r} outside [0, 1]"));
            }
        }
        if self.mem_ratio + self.shared_mem_ratio > 1.0 + 1e-9 {
            problems.push("mem_ratio + shared_mem_ratio exceeds 1".into());
        }
        if self.compute_latency.0 == 0 || self.compute_latency.0 > self.compute_latency.1 {
            problems.push("compute_latency range invalid".into());
        }
        if self.mem_ratio > 0.0 && self.regions.is_empty() {
            problems.push("mem_ratio > 0 requires at least one region".into());
        }
        for (i, r) in self.regions.iter().enumerate() {
            if r.size < 128 {
                problems.push(format!("region {i} smaller than one cache line"));
            }
            if r.weight <= 0.0 {
                problems.push(format!("region {i} has non-positive weight"));
            }
            match r.access {
                RegionAccess::Stream { advance } | RegionAccess::Reuse { advance } => {
                    if advance == 0 {
                        problems.push(format!("region {i} has zero advance"));
                    }
                }
                RegionAccess::Random => {}
            }
            if let Divergence::Scatter { lanes } = r.divergence {
                if lanes == 0 || lanes > 32 {
                    problems.push(format!("region {i} has invalid scatter lane count"));
                }
            }
        }
        problems
    }

    /// Approximate number of bytes the warp touches across all its regions
    /// (the per-warp working-set estimate used by tests and reports).
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_only_is_valid() {
        let s = PatternSpec::compute_only(100, 7);
        assert!(s.validate().is_empty());
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn helpers_build_valid_regions() {
        let mut s = PatternSpec::compute_only(100, 0);
        s.mem_ratio = 0.5;
        s.regions.push(RegionSpec::private_stream(0, 64 * 1024));
        s.regions.push(RegionSpec::shared_reuse(1 << 20, 16 * 1024, 0.5));
        assert!(s.validate().is_empty());
        assert_eq!(s.footprint_bytes(), 80 * 1024);
    }

    #[test]
    fn validation_catches_problems() {
        let mut s = PatternSpec::compute_only(0, 0);
        s.mem_ratio = 1.5;
        s.shared_mem_ratio = 0.2;
        s.compute_latency = (0, 0);
        assert!(s.validate().len() >= 3);

        let mut s2 = PatternSpec::compute_only(10, 0);
        s2.mem_ratio = 0.3;
        assert!(s2.validate().iter().any(|p| p.contains("at least one region")));

        let mut s3 = PatternSpec::compute_only(10, 0);
        s3.mem_ratio = 0.3;
        s3.regions.push(RegionSpec {
            base: 0,
            size: 64,
            weight: 0.0,
            access: RegionAccess::Stream { advance: 0 },
            divergence: Divergence::Scatter { lanes: 0 },
        });
        let problems = s3.validate();
        assert!(problems.iter().any(|p| p.contains("smaller than one cache line")));
        assert!(problems.iter().any(|p| p.contains("non-positive weight")));
        assert!(problems.iter().any(|p| p.contains("zero advance")));
        assert!(problems.iter().any(|p| p.contains("scatter lane count")));
    }

    #[test]
    fn ratio_budget_enforced() {
        let mut s = PatternSpec::compute_only(10, 0);
        s.mem_ratio = 0.7;
        s.shared_mem_ratio = 0.5;
        s.regions.push(RegionSpec::private_stream(0, 4096));
        assert!(s.validate().iter().any(|p| p.contains("exceeds 1")));
    }
}
