//! Mars (MapReduce-on-GPU) workloads: KMN, II, PVC, SS, SM, WC.
//!
//! MapReduce kernels hash keys into buckets and emit key/value pairs, which
//! shows up architecturally as scatter-type accesses into shared hash/index
//! structures plus per-warp input streaming, CTA barriers between map/reduce
//! stages, and — for PVC and SS — substantial programmer use of shared memory
//! (the Fsmem column of Table II), which is exactly the space CIAO cannot
//! repurpose.

use crate::benchmarks::ScaleConfig;
use crate::kernel::{warp_seed, WorkloadKernel};
use crate::spec::{Divergence, RegionAccess, RegionSpec};
use crate::suites::{
    base_spec, irregular_region, private_base, private_stream_region, scaled_size,
    shared_reuse_region,
};
use gpu_sim::kernel::KernelInfo;

fn info(name: &str, num_ctas: usize, warps_per_cta: usize, shared_mem_per_cta: u32) -> KernelInfo {
    KernelInfo { name: name.into(), num_ctas, warps_per_cta, shared_mem_per_cta }
}

fn gw(cta: u32, w: usize, warps_per_cta: usize) -> u64 {
    cta as u64 * warps_per_cta as u64 + w as u64
}

/// KMN (Mars k-means): large irregular working set — every warp streams its
/// input points and scatters into a large shared centroid/assignment
/// structure. LWS class: the combined footprint overwhelms shared memory too.
pub fn kmn(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("KMN", 12, 8, 512), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x6A17, cta, w), 0.42, 0.15, (1, 3));
        s.regions.push(private_stream_region(g, 24 * 1024, &scale, 1.0));
        s.regions.push(irregular_region(192 * 1024, &scale, 0.55, 16));
        s.regions.push(shared_reuse_region(4 * 1024, &scale, 0.35));
        s.barrier_every = Some(200);
        s
    })
}

/// II (inverted index): scatter-heavy but with a compact dictionary that fits
/// once isolated (SWS class).
pub fn ii(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("II", 6, 8, 256), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x1100, cta, w), 0.46, 0.20, (1, 3));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 0.8,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(irregular_region(24 * 1024, &scale, 0.6, 8));
        s.barrier_every = Some(250);
        s
    })
}

/// PVC (page-view count): one third of the scratchpad is programmer-allocated,
/// limiting the space CIAO can borrow; best SWL keeps all 48 warps active.
pub fn pvc(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 4 resident CTAs × 4 KB ≈ 16 KB ≈ 33% of the 48 KB scratchpad.
    WorkloadKernel::single_phase(info("PVC", 8, 12, 4 * 1024), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x9FC0, cta, w), 0.30, 0.18, (1, 4));
        s.shared_mem_ratio = 0.12;
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(768, &scale),
            weight: 0.7,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(irregular_region(20 * 1024, &scale, 0.5, 8));
        s.barrier_every = Some(300);
        s
    })
}

/// SS (similarity score): half of the scratchpad is programmer-allocated.
pub fn ss(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 4 resident CTAs × 6 KB ≈ 24 KB ≈ 50% of the scratchpad.
    WorkloadKernel::single_phase(info("SS", 8, 12, 6 * 1024), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x55AA, cta, w), 0.22, 0.12, (1, 4));
        s.shared_mem_ratio = 0.18;
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 0.8,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(irregular_region(16 * 1024, &scale, 0.4, 8));
        s.barrier_every = Some(300);
        s
    })
}

/// SM (string match): very memory-intensive scanning with a small dictionary.
pub fn sm(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("SM", 8, 12, 512), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x53AD, cta, w), 0.60, 0.10, (1, 2));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(8 * 1024, &scale, 0.8));
        s.barrier_every = Some(400);
        s
    })
}

/// WC (word count): light memory intensity with scattered bucket updates.
pub fn wc(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("WC", 8, 12, 512), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x77C0, cta, w), 0.16, 0.25, (1, 4));
        s.regions.push(private_stream_region(g, 2 * 1024, &scale, 0.6));
        s.regions.push(irregular_region(12 * 1024, &scale, 0.5, 8));
        s.barrier_every = Some(350);
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;
    use gpu_sim::trace::WarpOp;

    fn all(scale: &ScaleConfig) -> Vec<WorkloadKernel> {
        vec![kmn(scale), ii(scale), pvc(scale), ss(scale), sm(scale), wc(scale)]
    }

    #[test]
    fn every_kernel_has_valid_specs() {
        let scale = ScaleConfig::quick();
        for k in all(&scale) {
            let info = k.info();
            for cta in 0..info.num_ctas.min(2) as u32 {
                for w in 0..info.warps_per_cta.min(4) {
                    for spec in k.specs_of(cta, w) {
                        assert!(spec.validate().is_empty(), "{}: {:?}", info.name, spec.validate());
                    }
                }
            }
        }
    }

    #[test]
    fn all_mars_kernels_use_barriers() {
        let scale = ScaleConfig::quick();
        for k in all(&scale) {
            let spec = &k.specs_of(0, 0)[0];
            assert!(spec.barrier_every.is_some(), "{} must use barriers", k.info().name);
        }
    }

    #[test]
    fn pvc_and_ss_reserve_programmer_shared_memory() {
        let scale = ScaleConfig::quick();
        assert_eq!(pvc(&scale).info().shared_mem_per_cta, 4 * 1024);
        assert_eq!(ss(&scale).info().shared_mem_per_cta, 6 * 1024);
        assert!(kmn(&scale).info().shared_mem_per_cta <= 1024);
    }

    #[test]
    fn scatter_accesses_are_generated() {
        let k = kmn(&ScaleConfig::quick());
        let mut p = k.warp_program(0, 0);
        let mut saw_scatter = false;
        while let Some(op) = p.next_op() {
            if let WarpOp::Load { pattern: gpu_sim::trace::MemPattern::Scatter(_), .. } = op {
                saw_scatter = true;
                break;
            }
        }
        assert!(saw_scatter, "KMN must emit scattered accesses");
    }

    #[test]
    fn kmn_footprint_is_lws_sized() {
        let scale = ScaleConfig::default();
        let fp = kmn(&scale).specs_of(0, 0)[0].footprint_bytes();
        // Must exceed L1D + scratchpad so that redirection alone cannot fix it.
        assert!(fp > 64 * 1024, "KMN footprint {fp}");
        let fp_ss = ss(&scale).specs_of(0, 0)[0].footprint_bytes();
        assert!(fp_ss < 64 * 1024, "SS footprint {fp_ss} should be SWS-sized");
    }
}
