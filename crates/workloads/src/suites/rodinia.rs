//! Rodinia workloads: Kmeans, Gaussian, Backprop, Hotspot, Lud, NN, NW.
//!
//! * **Kmeans** is the LWS representative: every warp streams its feature
//!   rows while all warps re-reference the shared centroid table.
//! * **Backprop** is the compute-intensive-but-miss-prone case of Fig. 1: a
//!   minority of warps carry most of the data locality *and* interfere with
//!   one another on the same shared weight tiles, which is what makes
//!   locality-aware throttling (CCWS) counter-productive on it.
//! * Hotspot, Lud and NW use sizeable programmer shared-memory allocations
//!   (Fsmem = 19%, 50% and 35%), shrinking the space CIAO can borrow.
//! * Gaussian and NN are low-APKI compute kernels.

use crate::benchmarks::ScaleConfig;
use crate::kernel::{warp_seed, WorkloadKernel};
use crate::spec::{Divergence, RegionAccess, RegionSpec};
use crate::suites::{
    base_spec, private_base, private_stream_region, scaled_size, shared_reuse_region, SHARED_AREA,
};
use gpu_sim::kernel::KernelInfo;

fn info(name: &str, num_ctas: usize, warps_per_cta: usize, shared_mem_per_cta: u32) -> KernelInfo {
    KernelInfo { name: name.into(), num_ctas, warps_per_cta, shared_mem_per_cta }
}

fn gw(cta: u32, w: usize, warps_per_cta: usize) -> u64 {
    cta as u64 * warps_per_cta as u64 + w as u64
}

/// Kmeans: feature-row streaming plus centroid-table reuse; LWS class with
/// best SWL limit 2.
pub fn kmeans(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("Kmeans", 12, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x6B3A, cta, w), 0.52, 0.08, (1, 3));
        s.regions.push(private_stream_region(g, 56 * 1024, &scale, 1.0));
        s.regions.push(shared_reuse_region(6 * 1024, &scale, 0.6));
        s.barrier_every = Some(500);
        s
    })
}

/// Gaussian elimination: compute-intensive row reductions over a small matrix.
pub fn gaussian(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("Gaussian", 12, 4, 0), move |cta, w| {
        let g = gw(cta, w, 4);
        let mut s = base_spec(&scale, warp_seed(0x6A55, cta, w), 0.12, 0.20, (2, 5));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(3 * 1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(4 * 1024, &scale, 0.4));
        s
    })
}

/// Backprop: compute-intensive overall, but a minority of warps repeatedly
/// access overlapping weight tiles and thrash each other (Fig. 1a). Uses 13%
/// of shared memory and CTA barriers between layers.
pub fn backprop(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 3 resident CTAs × 2 KB ≈ 6 KB ≈ 13% of the 48 KB scratchpad.
    WorkloadKernel::single_phase(info("Backprop", 9, 12, 2 * 1024), move |cta, w| {
        let g = gw(cta, w, 12);
        let hot = g % 6 < 2; // a third of the warps carry the locality
        let mut s = base_spec(
            &scale,
            warp_seed(0xBAC6, cta, w),
            if hot { 0.18 } else { 0.04 },
            0.15,
            (2, 5),
        );
        s.shared_mem_ratio = 0.06;
        if hot {
            // Hot warps share two overlapping weight tiles: high locality
            // potential, high mutual interference.
            let tile = g % 6;
            s.regions.push(RegionSpec {
                base: SHARED_AREA + tile * scaled_size(8 * 1024, &scale),
                size: scaled_size(20 * 1024, &scale),
                weight: 1.0,
                access: RegionAccess::Reuse { advance: 128 },
                divergence: Divergence::Coalesced,
            });
        } else {
            s.regions.push(private_stream_region(g, 2 * 1024, &scale, 1.0));
        }
        s.barrier_every = Some(400);
        s
    })
}

/// Hotspot: stencil kernel keeping its tile in programmer shared memory
/// (Fsmem 19%), hence very few global accesses per instruction.
pub fn hotspot(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 3 resident CTAs × 3 KB ≈ 9 KB ≈ 19% of the scratchpad.
    WorkloadKernel::single_phase(info("Hotspot", 9, 12, 3 * 1024), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x407 + 1, cta, w), 0.02, 0.30, (2, 6));
        s.shared_mem_ratio = 0.20;
        s.regions.push(private_stream_region(g, 1024, &scale, 1.0));
        s.barrier_every = Some(250);
        s
    })
}

/// LUD: blocked LU decomposition living almost entirely in shared memory
/// (Fsmem 50%).
pub fn lud(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 3 resident CTAs × 8 KB ≈ 24 KB ≈ 50% of the scratchpad.
    WorkloadKernel::single_phase(info("Lud", 6, 12, 8 * 1024), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x10D, cta, w), 0.03, 0.20, (2, 6));
        s.shared_mem_ratio = 0.25;
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.barrier_every = Some(200);
        s
    })
}

/// NN (nearest neighbour): a light streaming scan of record data.
pub fn nn(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("NN", 12, 4, 0), move |cta, w| {
        let g = gw(cta, w, 4);
        let mut s = base_spec(&scale, warp_seed(0x4E4E, cta, w), 0.09, 0.10, (2, 5));
        s.regions.push(private_stream_region(g, 4 * 1024, &scale, 1.0));
        s.regions.push(shared_reuse_region(2 * 1024, &scale, 0.3));
        s
    })
}

/// NW (Needleman-Wunsch): wavefront dynamic programming with 35% of the
/// scratchpad holding the score tile.
pub fn nw(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    // 3 resident CTAs × 5.5 KB ≈ 16.5 KB ≈ 35% of the scratchpad.
    WorkloadKernel::single_phase(info("NW", 9, 12, 5632), move |cta, w| {
        let g = gw(cta, w, 12);
        let mut s = base_spec(&scale, warp_seed(0x4E57, cta, w), 0.05, 0.25, (2, 5));
        s.shared_mem_ratio = 0.15;
        s.regions.push(private_stream_region(g, 2 * 1024, &scale, 1.0));
        s.barrier_every = Some(150);
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;

    fn all(scale: &ScaleConfig) -> Vec<WorkloadKernel> {
        vec![
            kmeans(scale),
            gaussian(scale),
            backprop(scale),
            hotspot(scale),
            lud(scale),
            nn(scale),
            nw(scale),
        ]
    }

    #[test]
    fn every_kernel_has_valid_specs() {
        let scale = ScaleConfig::quick();
        for k in all(&scale) {
            let info = k.info();
            for cta in 0..info.num_ctas.min(2) as u32 {
                for w in 0..info.warps_per_cta.min(4) {
                    for spec in k.specs_of(cta, w) {
                        assert!(spec.validate().is_empty(), "{}: {:?}", info.name, spec.validate());
                    }
                }
            }
        }
    }

    #[test]
    fn backprop_has_heterogeneous_warps() {
        let scale = ScaleConfig::quick();
        let k = backprop(&scale);
        let ratios: Vec<f64> = (0..12).map(|w| k.specs_of(0, w)[0].mem_ratio).collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(1.0, f64::min);
        assert!(max > 3.0 * min, "hot and cold warps must differ: {ratios:?}");
    }

    #[test]
    fn backprop_hot_warps_share_overlapping_tiles() {
        let scale = ScaleConfig::quick();
        let k = backprop(&scale);
        // Warps 0 and 1 of CTA 0 are hot (g % 6 < 2) and their tiles overlap.
        let a = &k.specs_of(0, 0)[0].regions[0];
        let b = &k.specs_of(0, 1)[0].regions[0];
        let a_range = a.base..a.base + a.size;
        assert!(a_range.contains(&b.base) || (b.base..b.base + b.size).contains(&a.base));
    }

    #[test]
    fn ci_kernels_have_low_memory_intensity() {
        let scale = ScaleConfig::default();
        for k in [gaussian(&scale), hotspot(&scale), lud(&scale), nn(&scale), nw(&scale)] {
            let spec = &k.specs_of(0, 2)[0];
            assert!(spec.mem_ratio <= 0.15, "{} mem_ratio {}", k.info().name, spec.mem_ratio);
        }
    }

    #[test]
    fn fsmem_heavy_kernels_reserve_scratchpad() {
        let scale = ScaleConfig::default();
        assert!(lud(&scale).info().shared_mem_per_cta >= 8 * 1024);
        assert!(nw(&scale).info().shared_mem_per_cta >= 5 * 1024);
        assert_eq!(kmeans(&scale).info().shared_mem_per_cta, 0);
    }

    #[test]
    fn kmeans_is_lws_sized() {
        let fp = kmeans(&ScaleConfig::default()).specs_of(0, 0)[0].footprint_bytes();
        assert!(fp > 48 * 1024, "Kmeans per-warp footprint {fp}");
    }
}
