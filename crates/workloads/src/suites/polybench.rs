//! PolyBench workloads: ATAX, BICG, MVT, GESUMMV, SYR2K, SYRK, 2DCONV, CORR.
//!
//! The linear-algebra kernels share a common structure: every warp streams
//! through its own slice of a large matrix (no temporal reuse) while
//! repeatedly re-referencing one or more shared vectors (strong reuse). The
//! interference phenomenon of §II-B arises exactly here: streaming accesses
//! of other warps keep evicting the vector data a warp is about to reuse.
//!
//! * The LWS members (ATAX, BICG, MVT) have per-warp matrix slices so large
//!   that even the repurposed shared memory cannot hold the combined traffic.
//! * The SWS members (GESUMMV, SYR2K, SYRK) have small per-warp working sets
//!   that fit comfortably in L1D + unused shared memory once they are
//!   separated from each other.
//! * 2DCONV and CORR are the compute-intensive members.

use crate::benchmarks::ScaleConfig;
use crate::kernel::{warp_seed, WorkloadKernel};
use crate::spec::{Divergence, RegionAccess, RegionSpec};
use crate::suites::{
    base_spec, private_base, private_stream_region, scaled_size, shared_reuse_region, SHARED_AREA,
};
use gpu_sim::kernel::KernelInfo;

fn info(name: &str, num_ctas: usize, warps_per_cta: usize, shared_mem_per_cta: u32) -> KernelInfo {
    KernelInfo { name: name.into(), num_ctas, warps_per_cta, shared_mem_per_cta }
}

fn gw(cta: u32, w: usize, warps_per_cta: usize) -> u64 {
    cta as u64 * warps_per_cta as u64 + w as u64
}

/// ATAX: `y = Aᵀ(Ax)`. Large working set, two distinct execution phases
/// (memory-intensive then compute-intensive, Fig. 9), best SWL limit 2.
pub fn atax(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::new(info("ATAX", 12, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        // Phase 1: stream the matrix slice while re-referencing the shared x
        // vector — memory-intensive, interference-prone.
        let mut p1 = base_spec(&scale, warp_seed(0xA7A1, cta, w), 0.50, 0.10, (1, 3));
        p1.total_ops = (scale.ops_per_warp * 3) / 5;
        p1.regions.push(private_stream_region(g, 48 * 1024, &scale, 1.0));
        p1.regions.push(shared_reuse_region(10 * 1024, &scale, 0.9));
        // Phase 2: reduction/compute phase with high data locality on a small
        // per-warp tile.
        let mut p2 = base_spec(&scale, warp_seed(0xA7A2, cta, w), 0.08, 0.05, (2, 6));
        p2.total_ops = scale.ops_per_warp - p1.total_ops;
        p2.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(4 * 1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        vec![p1, p2]
    })
}

/// BICG: two matrix-vector products sharing the matrix. Large working set.
pub fn bicg(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("BICG", 12, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0xB1C6, cta, w), 0.48, 0.08, (1, 3));
        s.regions.push(private_stream_region(g, 48 * 1024, &scale, 1.0));
        s.regions.push(shared_reuse_region(8 * 1024, &scale, 0.45));
        s.regions.push(RegionSpec {
            base: SHARED_AREA + (1 << 22),
            size: scaled_size(8 * 1024, &scale),
            weight: 0.45,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s
    })
}

/// MVT: two independent matrix-vector products. Large working set.
pub fn mvt(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("MVT", 12, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x33F7, cta, w), 0.46, 0.10, (1, 3));
        s.regions.push(private_stream_region(g, 40 * 1024, &scale, 1.0));
        s.regions.push(shared_reuse_region(12 * 1024, &scale, 0.8));
        s
    })
}

/// GESUMMV: scalar-vector-matrix multiply with a small reusable working set
/// per warp (SWS class, APKI 136 — the most memory-intensive benchmark).
pub fn gesummv(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("GESUMMV", 6, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x6E50, cta, w), 0.62, 0.08, (1, 2));
        // Per-warp tile that the warp re-references heavily.
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(6 * 1024, &scale, 0.8));
        s
    })
}

/// SYR2K: symmetric rank-2k update; small per-warp tiles with high reuse.
pub fn syr2k(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("SYR2K", 6, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x5272, cta, w), 0.55, 0.12, (1, 3));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1280, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(12 * 1024, &scale, 0.7));
        s
    })
}

/// SYRK: symmetric rank-k update; like SYR2K with a slightly smaller tile.
pub fn syrk(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("SYRK", 6, 8, 0), move |cta, w| {
        let g = gw(cta, w, 8);
        let mut s = base_spec(&scale, warp_seed(0x5253, cta, w), 0.52, 0.10, (1, 3));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(10 * 1024, &scale, 0.7));
        s
    })
}

/// 2DCONV: 2-D convolution, compute-intensive with a small stencil footprint.
pub fn conv2d(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("2DCONV", 9, 4, 0), move |cta, w| {
        let g = gw(cta, w, 4);
        let mut s = base_spec(&scale, warp_seed(0x2DC0, cta, w), 0.07, 0.25, (2, 6));
        s.regions.push(private_stream_region(g, 6 * 1024, &scale, 1.0));
        s.regions.push(shared_reuse_region(4 * 1024, &scale, 0.4));
        s
    })
}

/// CORR: correlation matrix computation, compute-intensive.
pub fn corr(scale: &ScaleConfig) -> WorkloadKernel {
    let scale = scale.clone();
    WorkloadKernel::single_phase(info("CORR", 12, 4, 0), move |cta, w| {
        let g = gw(cta, w, 4);
        let mut s = base_spec(&scale, warp_seed(0xC022, cta, w), 0.08, 0.15, (2, 6));
        s.regions.push(RegionSpec {
            base: private_base(g),
            size: scaled_size(2 * 1024, &scale),
            weight: 1.0,
            access: RegionAccess::Reuse { advance: 128 },
            divergence: Divergence::Coalesced,
        });
        s.regions.push(shared_reuse_region(6 * 1024, &scale, 0.5));
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::Kernel;

    fn all(scale: &ScaleConfig) -> Vec<WorkloadKernel> {
        vec![
            atax(scale),
            bicg(scale),
            mvt(scale),
            gesummv(scale),
            syr2k(scale),
            syrk(scale),
            conv2d(scale),
            corr(scale),
        ]
    }

    #[test]
    fn every_kernel_has_valid_specs() {
        let scale = ScaleConfig::quick();
        for k in all(&scale) {
            let info = k.info();
            for cta in 0..info.num_ctas.min(3) as u32 {
                for w in 0..info.warps_per_cta {
                    for spec in k.specs_of(cta, w) {
                        assert!(spec.validate().is_empty(), "{}: {:?}", info.name, spec.validate());
                    }
                }
            }
        }
    }

    #[test]
    fn atax_is_two_phase() {
        let k = atax(&ScaleConfig::quick());
        let phases = k.specs_of(0, 0);
        assert_eq!(phases.len(), 2);
        assert!(
            phases[0].mem_ratio > phases[1].mem_ratio,
            "phase 1 must be the memory-intensive one"
        );
    }

    #[test]
    fn lws_members_have_larger_footprints_than_sws_members() {
        let scale = ScaleConfig::default();
        let lws = atax(&scale).specs_of(0, 0)[0].footprint_bytes();
        let sws = gesummv(&scale).specs_of(0, 0)[0].footprint_bytes();
        assert!(lws > 3 * sws, "ATAX footprint {lws} vs GESUMMV {sws}");
    }

    #[test]
    fn ci_members_have_low_memory_intensity() {
        let scale = ScaleConfig::default();
        for k in [conv2d(&scale), corr(&scale)] {
            let spec = &k.specs_of(0, 0)[0];
            assert!(spec.mem_ratio <= 0.1, "{} mem_ratio {}", k.info().name, spec.mem_ratio);
        }
    }

    #[test]
    fn programs_terminate() {
        let scale = ScaleConfig::quick();
        let k = syrk(&scale);
        let mut p = k.warp_program(0, 0);
        let mut count = 0;
        while p.next_op().is_some() {
            count += 1;
            assert!(count <= scale.ops_per_warp + 1);
        }
        assert_eq!(count, scale.ops_per_warp);
    }
}
