//! Benchmark suite implementations.
//!
//! One module per source suite of Table II: [`polybench`] (linear-algebra
//! kernels), [`mars`] (MapReduce workloads) and [`rodinia`] (heterogeneous
//! compute kernels). Each module exposes one constructor per benchmark that
//! returns a ready-to-run [`crate::WorkloadKernel`].
//!
//! The constructors share the conventions defined here:
//!
//! * the global address space is partitioned into a *matrix/stream* area
//!   (per-warp private regions), a *vector/lookup* area shared by all warps
//!   (the data with "high potential of data locality" whose reuse is
//!   destroyed by interference), and an *irregular* area for scatter-heavy
//!   MapReduce workloads;
//! * per-warp seeds are derived with [`crate::kernel::warp_seed`] so traces
//!   are deterministic and scheduler-independent;
//! * all sizes scale with [`crate::ScaleConfig`] so the harness can trade
//!   fidelity for speed without changing workload shape.

pub mod mars;
pub mod polybench;
pub mod rodinia;

use crate::benchmarks::ScaleConfig;
use crate::spec::{Divergence, PatternSpec, RegionAccess, RegionSpec};
use gpu_mem::Addr;

/// Base address of per-warp private streaming data (matrices, input arrays).
pub const STREAM_AREA: Addr = 0x1000_0000;
/// Base address of globally shared, re-referenced data (vectors, centroids).
pub const SHARED_AREA: Addr = 0x4000_0000;
/// Base address of irregularly accessed data (hash tables, index arrays).
pub const IRREGULAR_AREA: Addr = 0x8000_0000;

/// Spacing between per-warp private regions, large enough that private
/// regions never overlap even at the largest footprint scale.
pub const PRIVATE_SPACING: u64 = 1 << 22;

/// Returns the base address of the private region of global warp `gw`.
pub fn private_base(gw: u64) -> Addr {
    STREAM_AREA + gw * PRIVATE_SPACING
}

/// Builds the skeleton of a spec: operation count, memory intensity, compute
/// latency and seed. Regions are added by the caller.
///
/// The experiment-level [`ScaleConfig::seed`] is mixed into the per-warp
/// `seed` here — the single funnel every suite's seeds pass through — so
/// `--seed N` replicates a whole experiment with decorrelated traces while
/// `seed == 0` leaves the historical traces untouched.
pub fn base_spec(
    scale: &ScaleConfig,
    seed: u64,
    mem_ratio: f64,
    store_ratio: f64,
    compute_latency: (u32, u32),
) -> PatternSpec {
    PatternSpec {
        total_ops: scale.ops_per_warp,
        mem_ratio,
        store_ratio,
        shared_mem_ratio: 0.0,
        compute_latency,
        regions: Vec::new(),
        barrier_every: None,
        seed: seed.wrapping_add(scale.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    }
}

/// A per-warp private region streamed once (negligible temporal reuse),
/// scaled by the footprint factor.
pub fn private_stream_region(gw: u64, bytes: u64, scale: &ScaleConfig, weight: f64) -> RegionSpec {
    RegionSpec {
        base: private_base(gw),
        size: scaled_size(bytes, scale),
        weight,
        access: RegionAccess::Stream { advance: 128 },
        divergence: Divergence::Coalesced,
    }
}

/// A globally shared region that warps sweep repeatedly (high locality
/// potential — the data CIAO tries to keep resident).
pub fn shared_reuse_region(bytes: u64, scale: &ScaleConfig, weight: f64) -> RegionSpec {
    RegionSpec {
        base: SHARED_AREA,
        size: scaled_size(bytes, scale),
        weight,
        access: RegionAccess::Reuse { advance: 128 },
        divergence: Divergence::Coalesced,
    }
}

/// A globally shared region accessed at pseudo-random block offsets with
/// divergent lanes (MapReduce hash tables, SpMV index arrays).
pub fn irregular_region(bytes: u64, scale: &ScaleConfig, weight: f64, lanes: u8) -> RegionSpec {
    RegionSpec {
        base: IRREGULAR_AREA,
        size: scaled_size(bytes, scale),
        weight,
        access: RegionAccess::Random,
        divergence: Divergence::Scatter { lanes },
    }
}

/// Applies the footprint scale, keeping sizes block-aligned and non-zero.
pub fn scaled_size(bytes: u64, scale: &ScaleConfig) -> u64 {
    (((bytes as f64 * scale.footprint_scale) as u64) / 128).max(1) * 128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_regions_do_not_overlap() {
        let scale = ScaleConfig::default();
        for gw in 0..96u64 {
            let r = private_stream_region(gw, 256 * 1024, &scale, 1.0);
            assert!(r.size <= PRIVATE_SPACING);
            let next = private_base(gw + 1);
            assert!(r.base + r.size <= next);
        }
    }

    #[test]
    fn scaled_size_is_block_aligned_and_positive() {
        let scale = ScaleConfig { footprint_scale: 0.001, ..ScaleConfig::default() };
        let s = scaled_size(4096, &scale);
        assert_eq!(s % 128, 0);
        assert!(s >= 128);
    }

    #[test]
    fn base_spec_is_valid_once_region_added() {
        let scale = ScaleConfig::default();
        let mut s = base_spec(&scale, 1, 0.4, 0.1, (1, 4));
        s.regions.push(shared_reuse_region(8192, &scale, 1.0));
        assert!(s.validate().is_empty());
    }

    #[test]
    fn experiment_seed_mixes_into_spec_seeds() {
        let zero = ScaleConfig::default();
        // seed == 0 is the identity: historical traces are untouched.
        assert_eq!(base_spec(&zero, 42, 0.2, 0.1, (1, 4)).seed, 42);
        // A non-zero experiment seed decorrelates, deterministically.
        let seeded = ScaleConfig::default().with_seed(7);
        let a = base_spec(&seeded, 42, 0.2, 0.1, (1, 4)).seed;
        let b = base_spec(&seeded, 42, 0.2, 0.1, (1, 4)).seed;
        assert_eq!(a, b);
        assert_ne!(a, 42);
        assert_ne!(a, base_spec(&ScaleConfig::default().with_seed(8), 42, 0.2, 0.1, (1, 4)).seed);
    }

    #[test]
    fn seeded_kernels_replay_different_but_deterministic_traces() {
        use crate::benchmarks::Benchmark;
        use gpu_sim::Kernel;
        let ops = |seed: u64| {
            let scale = ScaleConfig::tiny().with_seed(seed);
            let mut p = Benchmark::Syrk.kernel(&scale).warp_program(0, 0);
            let mut ops = Vec::new();
            while let Some(op) = p.next_op() {
                ops.push(op);
            }
            ops
        };
        assert_eq!(ops(0), ops(0));
        assert_eq!(ops(5), ops(5));
        assert_ne!(ops(0), ops(5), "different experiment seeds must change the trace");
    }

    #[test]
    fn areas_are_disjoint() {
        const { assert!(STREAM_AREA + 96 * PRIVATE_SPACING < SHARED_AREA) };
        const { assert!(SHARED_AREA + (1 << 26) < IRREGULAR_AREA) };
    }
}
