//! # ciao-workloads — synthetic benchmark generators
//!
//! The CIAO paper evaluates 21 benchmarks from PolyBench, Mars and Rodinia
//! (Table II). Their CUDA binaries cannot be executed by a standalone Rust
//! simulator, so this crate provides *synthetic trace generators* that
//! reproduce the properties those benchmarks exercise in the paper's
//! evaluation:
//!
//! * memory intensity (the APKI column of Table II),
//! * working-set class — large working set (LWS), small working set (SWS) or
//!   compute-intensive (CI),
//! * inter-warp data sharing and locality potential (which drives the cache
//!   interference CIAO targets),
//! * programmer shared-memory usage (the `Fsmem` column),
//! * barrier usage and the best static warp-limiting value `Nwrp`.
//!
//! Each benchmark is described by a [`spec::PatternSpec`] built by one of the
//! suite modules ([`suites::polybench`], [`suites::mars`],
//! [`suites::rodinia`]) and executed by the generic [`program::PatternProgram`]
//! generator, which produces a deterministic per-warp stream of
//! `gpu_sim::WarpOp`s.
//!
//! The [`Benchmark`] enum is the public entry point:
//!
//! ```
//! use ciao_workloads::{Benchmark, ScaleConfig};
//! let kernel = Benchmark::Atax.kernel(&ScaleConfig::quick());
//! assert!(kernel.info().total_warps() > 0);
//! # use gpu_sim::Kernel;
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod benchmarks;
pub mod characteristics;
pub mod kernel;
pub mod mix;
pub mod program;
pub mod spec;
pub mod suites;

pub use benchmarks::{Benchmark, ScaleConfig};
pub use characteristics::{BenchmarkClass, BenchmarkInfo, TABLE2};
pub use kernel::WorkloadKernel;
pub use mix::Mix;
pub use program::PatternProgram;
pub use spec::{Divergence, PatternSpec, RegionAccess, RegionSpec};
