//! Multi-tenant co-execution invariants.
//!
//! The contract of the `gpu_sim::dispatch` subsystem, checked end to end
//! against real benchmark kernels:
//!
//! 1. a mix with a single tenant under the `Exclusive` policy is
//!    *bit-identical* to today's single-kernel chip run (for every policy,
//!    in fact — one stream admits no sharing),
//! 2. under the sharing policies, per-tenant L1/L2/instruction/crossbar
//!    attribution sums exactly to the chip totals,
//! 3. the STP / weighted-speedup and ANTT metrics obey their defining
//!    formulas on real co-run results,
//! 4. every policy is deterministic across repeats on a full 15-SM chip
//!    despite parallel per-SM execution.

use std::sync::Arc;

use ciao_suite::harness::runner::{RunScale, Runner};
use ciao_suite::harness::schedulers::SchedulerKind;
use ciao_suite::sim::{
    avg_normalized_turnaround, system_throughput, DispatchPolicy, GpuConfig, Kernel, KernelQueue,
    SimResult, Simulator,
};
use ciao_suite::workloads::{Benchmark, Mix};

fn tiny_config(sms: usize) -> GpuConfig {
    GpuConfig::gtx480()
        .with_num_sms(sms)
        .with_max_instructions(RunScale::Tiny.max_instructions())
        .with_sample_interval(RunScale::Tiny.sample_interval())
}

fn assert_results_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.cycles, b.cycles, "cycle counts differ");
    assert_eq!(a.stats, b.stats, "aggregate stats differ");
    assert_eq!(a.per_sm, b.per_sm, "per-SM stats differ");
    assert_eq!(a.per_tenant, b.per_tenant, "per-tenant results differ");
    assert_eq!(a.time_series, b.time_series, "time series differ");
    assert_eq!(a.interference, b.interference, "interference matrices differ");
    assert_eq!(a.scheduler_metrics, b.scheduler_metrics, "scheduler metrics differ");
    assert_eq!(a.capped, b.capped, "capped flags differ");
    assert_eq!(a.interconnect, b.interconnect, "interconnect traffic differs");
}

#[test]
fn one_tenant_mix_is_bit_identical_to_single_kernel_chip_run() {
    // GTO exercises the plain L1D path; CIAO-C additionally exercises the
    // redirect cache, throttling and the detector.
    for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
        let config = tiny_config(4);
        let params = ciao_suite::ciao::CiaoParams::default();
        let benchmark = Benchmark::Syrk;
        let scale = RunScale::Tiny.workload_scale();
        let sim = Simulator::new(config.clone());

        let kernel: Arc<dyn Kernel> = Arc::new(benchmark.kernel(&scale));
        let chip =
            sim.run_chip(Arc::clone(&kernel), |_| scheduler.build(benchmark, &config, &params));

        for policy in DispatchPolicy::all() {
            let queue = KernelQueue::from_kernels([Arc::clone(&kernel)]);
            let via_queue =
                queue.run(&config, policy, |_| scheduler.build(benchmark, &config, &params));
            assert_eq!(via_queue.per_tenant.len(), 1);
            assert_eq!(via_queue.policy, policy.label());
            assert_results_identical(&chip, &via_queue);
        }
    }
}

#[test]
fn shared_policy_tenant_attribution_sums_to_chip_totals() {
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    for policy in [DispatchPolicy::SpatialPartition, DispatchPolicy::SharedRoundRobin] {
        for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
            let res = runner.run_mix(Mix::CacheStream, policy, scheduler);
            assert_eq!(res.per_tenant.len(), 2, "{policy}");
            let sum = |f: fn(&ciao_suite::sim::TenantResult) -> u64| -> u64 {
                res.per_tenant.iter().map(f).sum()
            };
            assert_eq!(
                sum(|t| t.instructions),
                res.stats.instructions,
                "{policy}/{scheduler}: instructions"
            );
            assert_eq!(
                sum(|t| t.l1d_accesses),
                res.stats.l1d.accesses(),
                "{policy}/{scheduler}: L1D accesses"
            );
            assert_eq!(sum(|t| t.l1d_hits), res.stats.l1d.hits(), "{policy}/{scheduler}: L1D hits");
            assert_eq!(
                sum(|t| t.mem.l2_accesses),
                res.stats.l2.accesses(),
                "{policy}/{scheduler}: L2 accesses"
            );
            assert_eq!(
                sum(|t| t.mem.l2_hits),
                res.stats.l2.hits(),
                "{policy}/{scheduler}: L2 hits"
            );
            assert_eq!(
                sum(|t| t.xbar_bytes),
                res.interconnect.bytes_transferred,
                "{policy}/{scheduler}: crossbar bytes"
            );
            // Every tenant actually used the shared cache.
            assert!(res.per_tenant.iter().all(|t| t.mem.l2_accesses > 0), "{policy}");
        }
    }
}

#[test]
fn stp_and_antt_follow_their_definitions_on_real_co_runs() {
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    let mix = Mix::CacheStream;
    let alone: Vec<f64> = mix
        .benchmarks()
        .iter()
        .map(|&b| runner.run_one(b, SchedulerKind::Gto).per_tenant[0].ipc())
        .collect();
    let res = runner.run_mix(mix, DispatchPolicy::SharedRoundRobin, SchedulerKind::Gto);
    let shared = res.tenant_ipcs();
    assert_eq!(shared.len(), 2);
    assert!(shared.iter().all(|&s| s > 0.0));

    let stp = system_throughput(&alone, &shared);
    let antt = avg_normalized_turnaround(&alone, &shared);
    // Defining formulas, computed by hand.
    let expect_stp: f64 = shared.iter().zip(&alone).map(|(&s, &a)| s / a).sum();
    let expect_antt: f64 =
        alone.iter().zip(&shared).map(|(&a, &s)| a / s).sum::<f64>() / alone.len() as f64;
    assert!((stp - expect_stp).abs() < 1e-12);
    assert!((antt - expect_antt).abs() < 1e-12);
    // Sanity bounds: STP cannot exceed the tenant count (no tenant runs
    // faster with a co-runner), ANTT cannot fall below 1.
    assert!(stp > 0.0 && stp <= alone.len() as f64 + 1e-9);
    assert!(antt >= 1.0 - 1e-9);
}

#[test]
fn every_policy_is_deterministic_at_fifteen_sms() {
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    for policy in DispatchPolicy::all() {
        let a = runner.run_mix(Mix::CacheCompute, policy, SchedulerKind::CiaoC);
        let b = runner.run_mix(Mix::CacheCompute, policy, SchedulerKind::CiaoC);
        assert_eq!(a.num_sms, 15, "{policy}");
        assert_eq!(a.per_sm.len(), 15, "{policy}");
        assert_eq!(a.per_tenant.len(), 2, "{policy}");
        assert!(a.stats.instructions > 0, "{policy}");
        assert_results_identical(&a, &b);
    }
}

#[test]
fn policies_place_work_differently_but_execute_the_same_work() {
    // The three policies must agree on *what* runs (every tenant's whole
    // grid) while disagreeing on *where/when* — different cycle counts are
    // expected, identical instruction totals are required.
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    let results: Vec<SimResult> = DispatchPolicy::all()
        .into_iter()
        .map(|p| runner.run_mix(Mix::CacheCache, p, SchedulerKind::Gto))
        .collect();
    let instructions: Vec<u64> = results.iter().map(|r| r.stats.instructions).collect();
    assert!(instructions.windows(2).all(|w| w[0] == w[1]), "{instructions:?}");
    for r in &results {
        for t in &r.per_tenant {
            assert!(t.instructions > 0);
            assert!(t.finish_cycle > 0);
        }
    }
}
