//! Multi-tenant co-execution invariants.
//!
//! The contract of the `gpu_sim::dispatch` subsystem, checked end to end
//! against real benchmark kernels:
//!
//! 1. a mix with a single tenant under the `Exclusive` policy is
//!    *bit-identical* to today's single-kernel chip run (for every policy,
//!    in fact — one stream admits no sharing),
//! 2. under the sharing policies, per-tenant L1/L2/instruction/crossbar
//!    attribution sums exactly to the chip totals,
//! 3. the STP / weighted-speedup and ANTT metrics obey their defining
//!    formulas on real co-run results,
//! 4. every policy is deterministic across repeats on a full 15-SM chip
//!    despite parallel per-SM execution.

use std::sync::Arc;

use ciao_suite::harness::runner::{RunScale, Runner};
use ciao_suite::harness::schedulers::SchedulerKind;
use ciao_suite::sim::{
    avg_normalized_turnaround, system_throughput, DispatchAction, DispatchLog, DispatchPolicy,
    GpuConfig, Kernel, KernelQueue, SimRequest, SimResult, Simulator,
};
use ciao_suite::workloads::{Benchmark, Mix};

fn tiny_config(sms: usize) -> GpuConfig {
    GpuConfig::gtx480()
        .with_num_sms(sms)
        .with_max_instructions(RunScale::Tiny.max_instructions())
        .with_sample_interval(RunScale::Tiny.sample_interval())
}

fn assert_results_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.cycles, b.cycles, "cycle counts differ");
    assert_eq!(a.stats, b.stats, "aggregate stats differ");
    assert_eq!(a.per_sm, b.per_sm, "per-SM stats differ");
    assert_eq!(a.per_tenant, b.per_tenant, "per-tenant results differ");
    assert_eq!(a.time_series, b.time_series, "time series differ");
    assert_eq!(a.interference, b.interference, "interference matrices differ");
    assert_eq!(a.scheduler_metrics, b.scheduler_metrics, "scheduler metrics differ");
    assert_eq!(a.capped, b.capped, "capped flags differ");
    assert_eq!(a.interconnect, b.interconnect, "interconnect traffic differs");
}

#[test]
fn one_tenant_mix_is_bit_identical_to_single_kernel_chip_run() {
    // GTO exercises the plain L1D path; CIAO-C additionally exercises the
    // redirect cache, throttling and the detector.
    for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
        let config = tiny_config(4);
        let params = ciao_suite::ciao::CiaoParams::default();
        let benchmark = Benchmark::Syrk;
        let scale = RunScale::Tiny.workload_scale();
        let sim = Simulator::new(config.clone());

        let kernel: Arc<dyn Kernel> = Arc::new(benchmark.kernel(&scale));
        let chip = sim.execute(SimRequest::kernel(Arc::clone(&kernel)), |_| {
            scheduler.build(benchmark, &config, &params)
        });

        for policy in DispatchPolicy::all() {
            let queue = KernelQueue::from_kernels([Arc::clone(&kernel)]);
            let via_queue =
                queue.run(&config, policy, |_| scheduler.build(benchmark, &config, &params));
            assert_eq!(via_queue.per_tenant.len(), 1);
            assert_eq!(via_queue.policy, policy.label());
            assert_results_identical(&chip, &via_queue);
        }
    }
}

#[test]
fn shared_policy_tenant_attribution_sums_to_chip_totals() {
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    for policy in [
        DispatchPolicy::SpatialPartition,
        DispatchPolicy::SharedRoundRobin,
        DispatchPolicy::InterferenceAware,
    ] {
        for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
            let res = runner.run_mix(Mix::CacheStream, policy, scheduler);
            assert_eq!(res.per_tenant.len(), 2, "{policy}");
            let sum = |f: fn(&ciao_suite::sim::TenantResult) -> u64| -> u64 {
                res.per_tenant.iter().map(f).sum()
            };
            assert_eq!(
                sum(|t| t.instructions),
                res.stats.instructions,
                "{policy}/{scheduler}: instructions"
            );
            assert_eq!(
                sum(|t| t.l1d_accesses),
                res.stats.l1d.accesses(),
                "{policy}/{scheduler}: L1D accesses"
            );
            assert_eq!(sum(|t| t.l1d_hits), res.stats.l1d.hits(), "{policy}/{scheduler}: L1D hits");
            assert_eq!(
                sum(|t| t.mem.l2_accesses),
                res.stats.l2.accesses(),
                "{policy}/{scheduler}: L2 accesses"
            );
            assert_eq!(
                sum(|t| t.mem.l2_hits),
                res.stats.l2.hits(),
                "{policy}/{scheduler}: L2 hits"
            );
            assert_eq!(
                sum(|t| t.xbar_bytes),
                res.interconnect.bytes_transferred,
                "{policy}/{scheduler}: crossbar bytes"
            );
            // Every tenant actually used the shared cache.
            assert!(res.per_tenant.iter().all(|t| t.mem.l2_accesses > 0), "{policy}");
        }
    }
}

#[test]
fn stp_and_antt_follow_their_definitions_on_real_co_runs() {
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    let mix = Mix::CacheStream;
    let alone: Vec<f64> = mix
        .benchmarks()
        .iter()
        .map(|&b| runner.run_one(b, SchedulerKind::Gto).per_tenant[0].ipc())
        .collect();
    let res = runner.run_mix(mix, DispatchPolicy::SharedRoundRobin, SchedulerKind::Gto);
    let shared = res.tenant_ipcs();
    assert_eq!(shared.len(), 2);
    assert!(shared.iter().all(|&s| s > 0.0));

    let stp = system_throughput(&alone, &shared);
    let antt = avg_normalized_turnaround(&alone, &shared);
    // Defining formulas, computed by hand.
    let expect_stp: f64 = shared.iter().zip(&alone).map(|(&s, &a)| s / a).sum();
    let expect_antt: f64 =
        alone.iter().zip(&shared).map(|(&a, &s)| a / s).sum::<f64>() / alone.len() as f64;
    assert!((stp - expect_stp).abs() < 1e-12);
    assert!((antt - expect_antt).abs() < 1e-12);
    // Sanity bounds: STP cannot exceed the tenant count (no tenant runs
    // faster with a co-runner), ANTT cannot fall below 1.
    assert!(stp > 0.0 && stp <= alone.len() as f64 + 1e-9);
    assert!(antt >= 1.0 - 1e-9);
}

#[test]
fn every_policy_is_deterministic_at_fifteen_sms() {
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    for policy in DispatchPolicy::all() {
        let a = runner.run_mix(Mix::CacheCompute, policy, SchedulerKind::CiaoC);
        let b = runner.run_mix(Mix::CacheCompute, policy, SchedulerKind::CiaoC);
        assert_eq!(a.num_sms, 15, "{policy}");
        assert_eq!(a.per_sm.len(), 15, "{policy}");
        assert_eq!(a.per_tenant.len(), 2, "{policy}");
        assert!(a.stats.instructions > 0, "{policy}");
        assert_results_identical(&a, &b);
    }
}

#[test]
fn interference_aware_beats_shared_rr_on_cache_stream_at_fifteen_sms() {
    // The headline claim of the adaptive policy (the chip-level CIAO-T
    // analogue): on the cache-sensitive × streaming mix it must contain the
    // streamer's interference better than blind interleaving — strictly
    // higher STP — without ever starving a tenant (finite ANTT, every tenant
    // makes progress). The pipelined banked backend dilutes interference
    // compared to the single-partition model, so the margin is thinner than
    // it once was, but the reactive monitor still measures the victim's
    // degradation and confines the streamer profitably.
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    let mix = Mix::CacheStream;
    let alone: Vec<f64> = mix
        .benchmarks()
        .iter()
        .map(|&b| runner.run_one(b, SchedulerKind::Gto).per_tenant[0].ipc())
        .collect();
    let shared_rr = runner.run_mix(mix, DispatchPolicy::SharedRoundRobin, SchedulerKind::Gto);
    let adaptive = runner.run_mix(mix, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);

    let stp_rr = system_throughput(&alone, &shared_rr.tenant_ipcs());
    let stp_ia = system_throughput(&alone, &adaptive.tenant_ipcs());
    assert!(stp_ia > stp_rr, "interference-aware STP {stp_ia:.4} must beat shared-rr {stp_rr:.4}");

    // No tenant starved: every tenant retired its whole grid and its
    // normalized turnaround is finite.
    assert!(!adaptive.capped);
    for t in &adaptive.per_tenant {
        assert!(t.instructions > 0, "tenant {} starved", t.tenant);
        assert!(t.ipc() > 0.0, "tenant {} made no progress", t.tenant);
    }
    let antt = avg_normalized_turnaround(&alone, &adaptive.tenant_ipcs());
    assert!(antt.is_finite() && antt >= 1.0 - 1e-9, "ANTT {antt} must be finite");

    // The monitor actually ran and recorded its reasoning.
    assert!(!adaptive.dispatch_log.is_empty());

    // Host-threading determinism: the chip engine always spawns one worker
    // per SM (Runner.threads only parallelises run_matrix, not run_mix), so
    // the lever the OS actually pulls is how it schedules those 15 workers —
    // which differs between repeats. The adaptive decisions are a pure
    // function of epoch-boundary stats, so the fully serialised results of
    // two independent runs must be byte-identical regardless.
    let a = runner.run_mix(mix, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);
    let b = runner.run_mix(mix, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);
    let json_a = serde_json::to_string_pretty(&a).expect("serialise");
    let json_b = serde_json::to_string_pretty(&b).expect("serialise");
    assert_eq!(json_a, json_b, "SimResult JSON differs across runs");
}

#[test]
fn interference_aware_pays_no_containment_tax_when_the_backend_contains_interference() {
    // The dual of the headline test: at Tiny scale the pipelined banked
    // backend spreads both tenants' working sets across its L2 slices and
    // the victim's windows never degrade — so the reactive dispatcher must
    // take (nearly) no action and track blind interleaving closely instead
    // of taxing the streamer with prophylactic confinement (the probe tax
    // the ROADMAP asked to amortise).
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    for mix in [Mix::CacheStream, Mix::CacheCache, Mix::CacheCompute] {
        let alone: Vec<f64> = mix
            .benchmarks()
            .iter()
            .map(|&b| runner.run_one(b, SchedulerKind::Gto).per_tenant[0].ipc())
            .collect();
        let rr = runner.run_mix(mix, DispatchPolicy::SharedRoundRobin, SchedulerKind::Gto);
        let ia = runner.run_mix(mix, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);
        let stp_rr = system_throughput(&alone, &rr.tenant_ipcs());
        let stp_ia = system_throughput(&alone, &ia.tenant_ipcs());
        assert!(
            stp_ia >= 0.95 * stp_rr,
            "{mix:?}: adaptive STP {stp_ia:.4} fell more than 5% behind shared-rr {stp_rr:.4} \
             on a mix the backend already keeps healthy"
        );
    }
}

#[test]
fn service_thread_count_never_changes_results_on_a_full_chip() {
    // The barrier-phase bank service shards each epoch's batch across worker
    // threads; the thread count is purely a wall-clock knob. Pin the
    // acceptance form of the invariant: the fully serialised SimResult of a
    // 15-SM multi-tenant co-run is byte-identical for 1 and 8 service
    // threads.
    let run = |threads: usize| {
        let mut runner = Runner::new(RunScale::Tiny).with_sms(15);
        runner.config = runner.config.with_service_threads(threads);
        let res =
            runner.run_mix(Mix::CacheStream, DispatchPolicy::SharedRoundRobin, SchedulerKind::Gto);
        serde_json::to_string_pretty(&res).expect("serialise")
    };
    assert_eq!(run(1), run(8), "service-thread count changed the simulation");
}

#[test]
fn dispatch_log_round_trips_through_json_with_series_and_actions() {
    // The decision log a real interference-aware co-run archives must
    // survive the JSON round trip intact, including the per-tenant hit-rate
    // window series the monitor derives from it.
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    let res =
        runner.run_mix(Mix::CacheStream, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);
    let log = &res.dispatch_log;
    assert!(!log.is_empty(), "the adaptive run must have recorded decisions");
    let series = log.l2_hit_rate_series(0);
    assert!(!series.is_empty(), "tenant 0 must have measured hit-rate windows");
    assert!(series.windows(2).all(|w| w[0].0 < w[1].0), "series cycles must be increasing");
    assert!(series.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));

    let json = serde_json::to_string_pretty(log).expect("serialise");
    let back: DispatchLog = serde_json::from_str(&json).expect("parse");
    assert_eq!(&back, log, "pristine log must round-trip bit-exactly");
    assert_eq!(back.l2_hit_rate_series(0), series);

    // Throttle / restore actions must survive the round trip too (a healthy
    // Tiny co-run may not produce them, so splice them into a copy).
    let mut augmented = log.clone();
    if let Some(last) = augmented.decisions.last_mut() {
        last.actions.push(DispatchAction::Throttle { tenant: 1, victim: 0, allowed_sms: 4 });
        last.actions.push(DispatchAction::Restore { tenant: 1, allowed_sms: 8 });
    }
    let json = serde_json::to_string_pretty(&augmented).expect("serialise");
    let back: DispatchLog = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, augmented);
    assert_eq!(back.throttle_count(), log.throttle_count() + 1);
    assert_eq!(back.restore_count(), log.restore_count() + 1);
}

#[test]
fn far_future_arrival_under_adaptive_dispatch_never_starves() {
    // Regression: the adaptive policy must fast-forward across a long idle
    // gap to a known future arrival instead of hitting the stall guard and
    // silently starving the late tenant.
    let runner = Runner::new(RunScale::Tiny).with_sms(4).with_arrivals(200_000);
    let res =
        runner.run_mix(Mix::CacheStream, DispatchPolicy::InterferenceAware, SchedulerKind::Gto);
    assert!(!res.capped, "run must not end before the late tenant arrives");
    for t in &res.per_tenant {
        assert!(t.instructions > 0, "tenant {} starved", t.tenant);
    }
    assert!(res.per_tenant[1].finish_cycle >= 200_000);
    // The gap was skipped, not simulated epoch by epoch: the run must not
    // balloon past arrival + a normal solo runtime.
    assert!(res.cycles < 500_000, "cycles {} suggest the gap was simulated", res.cycles);
}

#[test]
fn dynamic_arrivals_admit_kernels_mid_run() {
    // Tenant 1 arrives 4000 cycles into the run: it must still execute its
    // whole grid, finish after its arrival, and finish later than it would
    // arriving at cycle 0 — under every concurrent policy and the serial
    // exclusive policy alike.
    let base = Runner::new(RunScale::Tiny).with_sms(4);
    let staggered = base.clone().with_arrivals(4_000);
    for policy in DispatchPolicy::all() {
        let at_zero = base.run_mix(Mix::CacheCompute, policy, SchedulerKind::Gto);
        let late = staggered.run_mix(Mix::CacheCompute, policy, SchedulerKind::Gto);
        assert_eq!(
            late.stats.instructions, at_zero.stats.instructions,
            "{policy}: arrivals must not change the executed work"
        );
        assert_eq!(late.per_tenant.len(), 2, "{policy}");
        assert!(
            late.per_tenant[1].finish_cycle >= 4_000,
            "{policy}: late tenant finished before it arrived"
        );
        // (No ordering claim against the at-zero finish: arriving later can
        // legitimately finish *earlier* by dodging the co-runner's cold-start
        // DRAM burst.)
        // Determinism with arrivals.
        let again = staggered.run_mix(Mix::CacheCompute, policy, SchedulerKind::Gto);
        assert_results_identical(&late, &again);
    }
}

#[test]
fn policies_place_work_differently_but_execute_the_same_work() {
    // The three policies must agree on *what* runs (every tenant's whole
    // grid) while disagreeing on *where/when* — different cycle counts are
    // expected, identical instruction totals are required.
    let runner = Runner::new(RunScale::Tiny).with_sms(4);
    let results: Vec<SimResult> = DispatchPolicy::all()
        .into_iter()
        .map(|p| runner.run_mix(Mix::CacheCache, p, SchedulerKind::Gto))
        .collect();
    let instructions: Vec<u64> = results.iter().map(|r| r.stats.instructions).collect();
    assert!(instructions.windows(2).all(|w| w[0] == w[1]), "{instructions:?}");
    for r in &results {
        for t in &r.per_tenant {
            assert!(t.instructions > 0);
            assert!(t.finish_cycle > 0);
        }
    }
}
