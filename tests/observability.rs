//! Acceptance tests for the observability layer: the canonical sim-time
//! trace must be byte-identical across host service-thread counts and across
//! the epoch/event timing backends, observation must never perturb
//! simulation results, and the exported Chrome trace-event JSON must parse
//! and name every track family (SMs, L2 banks, fabric directions, tenants,
//! dispatcher).

use ciao_harness::runner::{RunScale, Runner};
use ciao_harness::schedulers::SchedulerKind;
use ciao_workloads::Mix;
use gpu_sim::{BackendKind, DispatchPolicy, ObsLevel, ObsReport, SimResult};
use serde::Value;

/// The reference observed co-run: the Tiny cache-vs-stream mix on a 15-SM
/// chip under interference-aware dispatch — the configuration whose
/// dispatcher actually throttles and restores.
fn observed_mix(threads: usize, backend: BackendKind, obs: ObsLevel) -> (SimResult, ObsReport) {
    let mut runner = Runner::new(RunScale::Tiny).with_sms(15).with_backend(backend).with_obs(obs);
    runner.config = runner.config.with_service_threads(threads);
    runner.run_mix_observed(
        Mix::CacheStream,
        DispatchPolicy::InterferenceAware,
        SchedulerKind::CiaoT,
    )
}

#[test]
fn canonical_trace_is_byte_identical_across_service_thread_counts() {
    // The barrier-phase bank service shards each epoch's batch across worker
    // threads; that is purely a wall-clock knob, so the full observability
    // export — trace and metrics — must not move by a byte.
    let (res_1, rep_1) = observed_mix(1, BackendKind::Epoch, ObsLevel::Full);
    let (res_8, rep_8) = observed_mix(8, BackendKind::Epoch, ObsLevel::Full);
    assert!(!rep_1.events.is_empty(), "the full-obs run must have recorded events");
    assert_eq!(rep_1.dropped_events, 0, "the ring buffers must not have overflowed");
    assert_eq!(
        rep_1.chrome_trace_json(),
        rep_8.chrome_trace_json(),
        "service-thread count changed the canonical trace"
    );
    assert_eq!(
        rep_1.metrics_json(),
        rep_8.metrics_json(),
        "service-thread count changed the metrics"
    );
    assert_eq!(
        serde_json::to_string_pretty(&res_1).unwrap(),
        serde_json::to_string_pretty(&res_8).unwrap(),
        "service-thread count changed the simulation itself"
    );
}

#[test]
fn canonical_trace_is_byte_identical_across_timing_backends() {
    // Engine-category events (idle skips, event-queue pops) differ between
    // backends by design; the canonical export excludes them, so what is
    // left must agree exactly — as must the metrics registry.
    let (res_epoch, rep_epoch) = observed_mix(1, BackendKind::Epoch, ObsLevel::Full);
    let (mut res_event, rep_event) = observed_mix(1, BackendKind::Event, ObsLevel::Full);
    assert_eq!(
        rep_epoch.chrome_trace_json(),
        rep_event.chrome_trace_json(),
        "timing backend changed the canonical trace"
    );
    assert_eq!(
        rep_epoch.metrics_json(),
        rep_event.metrics_json(),
        "timing backend changed the metrics"
    );
    // The results themselves are bit-identical in everything but the
    // backend label.
    assert_eq!(res_event.backend, "event");
    res_event.backend = res_epoch.backend.clone();
    assert_eq!(
        serde_json::to_string_pretty(&res_epoch).unwrap(),
        serde_json::to_string_pretty(&res_event).unwrap(),
    );
}

#[test]
fn observation_never_perturbs_the_simulation() {
    // --obs full must be a pure read: the serialised SimResult is
    // byte-identical to the --obs off run, and an off-level report is empty.
    let (res_off, rep_off) = observed_mix(1, BackendKind::Epoch, ObsLevel::Off);
    let (res_full, _) = observed_mix(1, BackendKind::Epoch, ObsLevel::Full);
    assert!(rep_off.events.is_empty(), "--obs off must record nothing");
    assert!(!rep_off.profile.is_enabled(), "--obs off must not profile");
    assert_eq!(
        serde_json::to_string_pretty(&res_off).unwrap(),
        serde_json::to_string_pretty(&res_full).unwrap(),
        "observation changed the simulation"
    );
}

/// Collects the string value at `key` of a JSON object, if present.
fn str_field<'v>(obj: &'v Value, key: &str) -> Option<&'v str> {
    match obj.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

#[test]
fn trace_export_parses_and_names_every_track_family() {
    let (_, report) = observed_mix(1, BackendKind::Epoch, ObsLevel::Full);
    let json = report.chrome_trace_json();
    let root: Value = serde_json::from_str(&json).expect("the trace export must be valid JSON");
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        panic!("the export must carry a traceEvents array");
    };
    assert!(!events.is_empty());

    // Track names come from the thread_name metadata records.
    let mut tracks: Vec<&str> = Vec::new();
    let mut phases: Vec<&str> = Vec::new();
    let mut names: Vec<&str> = Vec::new();
    for ev in events {
        let ph = str_field(ev, "ph").expect("every record has a phase");
        phases.push(ph);
        if ph == "M" {
            if let Some(name) = ev.get("args").and_then(|a| str_field(a, "name")) {
                tracks.push(name);
            }
        } else {
            names.push(str_field(ev, "name").expect("every event is named"));
            assert!(ev.get("ts").is_some(), "every event carries a timestamp");
            assert!(ev.get("tid").is_some(), "every event sits on a track");
        }
    }
    // One track per SM, per L2 bank, per fabric direction, per tenant, plus
    // the dispatcher's own timeline.
    for expected in ["SM 0", "SM 14", "L2 bank 0", "fabric request", "fabric reply", "dispatcher"] {
        assert!(tracks.contains(&expected), "missing track {expected:?} in {tracks:?}");
    }
    assert!(tracks.iter().any(|t| t.starts_with("tenant 0:")), "missing tenant 0 track");
    assert!(tracks.iter().any(|t| t.starts_with("tenant 1:")), "missing tenant 1 track");
    // Only complete spans ("X"), instants ("i") and metadata ("M") appear.
    assert!(phases.iter().all(|p| matches!(*p, "X" | "i" | "M")), "unexpected phase");
    // The dispatcher timeline carries its decision instants, including the
    // throttle/restore activity this mix provokes.
    for expected in ["admit", "place"] {
        assert!(names.contains(&expected), "missing dispatch instant {expected:?}");
    }
    assert!(
        names.contains(&"throttle") || names.contains(&"restore"),
        "the interference-aware co-run must surface throttle/restore instants"
    );
    // The engine-only categories never leak into the canonical export.
    assert!(!names.contains(&"pop"), "engine events leaked into the canonical trace");
    assert!(!names.contains(&"idle-skip"), "engine events leaked into the canonical trace");
}
