//! Multi-SM chip-engine invariants.
//!
//! The contract of the `gpu_sim::gpu` engine, checked end to end:
//!
//! 1. a 1-SM chip run is *bit-identical* to the legacy single-SM path,
//! 2. adding SMs never lowers chip IPC on a cache-light workload,
//! 3. the shared L2 sees exactly the downstream traffic the per-SM L1s
//!    produced,
//! 4. the CTA dispatcher assigns every block exactly once for arbitrary
//!    (blocks, SMs) shapes,
//! 5. a full 15-SM harness run is deterministic across repeats despite
//!    parallel per-SM execution.

use std::sync::Arc;

use ciao_suite::harness::runner::{RunScale, Runner};
use ciao_suite::harness::schedulers::SchedulerKind;
use ciao_suite::sim::kernel::{ClosureKernel, KernelInfo};
use ciao_suite::sim::trace::{VecProgram, WarpOp};
use ciao_suite::sim::{
    dispatch_round_robin, DispatchPolicy, GpuConfig, GtoScheduler, Kernel, SimRequest, SimResult,
    Simulator,
};
use ciao_suite::workloads::Benchmark;
use proptest::prelude::*;

/// A cache-light kernel: every warp streams its own distinct blocks (no
/// reuse, no sharing), so per-SM throughput does not depend on cache capacity
/// and blocks split across SMs cannot slow each other down through the L1.
fn cache_light_kernel(
    ctas: usize,
    ops_per_warp: usize,
) -> ClosureKernel<impl Fn(u32, usize) -> Box<dyn ciao_suite::sim::WarpProgram> + Send + Sync> {
    let info = KernelInfo {
        name: "cache-light".into(),
        num_ctas: ctas,
        warps_per_cta: 2,
        shared_mem_per_cta: 0,
    };
    ClosureKernel::new(info, move |cta, w| {
        let mut ops = Vec::with_capacity(ops_per_warp * 2);
        for i in 0..ops_per_warp {
            // Globally unique block per (cta, warp, i): no reuse anywhere.
            let block =
                (cta as u64 * 64 + w as u64 * 32 + i as u64 % 32) * 128 + (cta as u64) * (1 << 20);
            ops.push(WarpOp::coalesced_load(block));
            ops.push(WarpOp::alu());
        }
        Box::new(VecProgram::new(ops))
    })
}

fn assert_results_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.cycles, b.cycles, "cycle counts differ");
    assert_eq!(a.stats, b.stats, "aggregate stats differ");
    assert_eq!(a.time_series, b.time_series, "time series differ");
    assert_eq!(a.interference, b.interference, "interference matrices differ");
    assert_eq!(a.scheduler_metrics, b.scheduler_metrics, "scheduler metrics differ");
    assert_eq!(a.capped, b.capped, "capped flags differ");
    assert_eq!(a.interconnect, b.interconnect, "interconnect traffic differs");
}

#[test]
fn one_sm_chip_is_bit_identical_to_legacy_run() {
    // GTO exercises the plain L1D path; CIAO-C additionally exercises the
    // redirect cache, throttling, and the detector.
    for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
        let config = GpuConfig::gtx480()
            .with_num_sms(1)
            .with_max_instructions(RunScale::Tiny.max_instructions())
            .with_sample_interval(RunScale::Tiny.sample_interval());
        let params = ciao_suite::ciao::CiaoParams::default();
        let benchmark = Benchmark::Syrk;
        let scale = RunScale::Tiny.workload_scale();
        let sim = Simulator::new(config.clone());

        let kernel: Arc<dyn Kernel> = Arc::new(benchmark.kernel(&scale));
        let legacy = sim.execute(SimRequest::kernel(Arc::clone(&kernel)).num_sms(1), |_| {
            scheduler.build(benchmark, &config, &params)
        });

        // A non-exclusive policy sidesteps `execute`'s static-single fast
        // path (the verbatim legacy `Sm` engine above), so this run exercises
        // the real chip engine on a 1-SM chip — one stream admits no sharing,
        // so the policy itself changes nothing.
        let req = SimRequest::kernel(kernel).num_sms(1).policy(DispatchPolicy::SharedRoundRobin);
        let chip = sim.execute(req, |_| scheduler.build(benchmark, &config, &params));

        assert_eq!(chip.num_sms, 1);
        assert_eq!(chip.per_sm.len(), 1);
        assert_eq!(chip.per_sm[0], chip.stats);
        assert_results_identical(&legacy, &chip);
    }
}

#[test]
fn chip_ipc_is_monotone_from_one_to_two_sms() {
    let ipc_with_sms = |sms: usize| {
        let config = GpuConfig::gtx480().with_num_sms(sms);
        let sim = Simulator::new(config);
        let kernel: Arc<dyn Kernel> = Arc::new(cache_light_kernel(8, 40));
        let res =
            sim.execute(SimRequest::kernel(kernel), |_| (Box::new(GtoScheduler::new()) as _, None));
        assert!(!res.capped);
        // Same total work regardless of the SM count.
        assert_eq!(res.stats.instructions, 8 * 2 * 40 * 2);
        res.ipc()
    };
    let one = ipc_with_sms(1);
    let two = ipc_with_sms(2);
    assert!(
        two >= one,
        "chip IPC must not decrease when adding an SM to a cache-light workload \
         (1 SM: {one:.4}, 2 SMs: {two:.4})"
    );
}

#[test]
fn shared_l2_accesses_equal_sum_of_per_sm_l1_misses() {
    // Loads only (no write-through traffic), globally unique blocks (no MSHR
    // merges, no bypass): every L1 miss produces exactly one shared-L2
    // access and nothing else does.
    let config = GpuConfig::gtx480().with_num_sms(2);
    let sim = Simulator::new(config);
    let kernel: Arc<dyn Kernel> = Arc::new(cache_light_kernel(6, 30));
    let res =
        sim.execute(SimRequest::kernel(kernel), |_| (Box::new(GtoScheduler::new()) as _, None));
    assert!(!res.capped);
    let l1_misses: u64 = res.per_sm.iter().map(|s| s.l1d.misses()).sum();
    assert!(l1_misses > 0, "workload should miss in the L1");
    assert_eq!(
        res.stats.l2.accesses(),
        l1_misses,
        "shared-L2 access counter must equal the sum of per-SM L1 miss counters"
    );
    // Per-SM records carry no L2 numbers of their own — the L2 is shared.
    assert!(res.per_sm.iter().all(|s| s.l2.accesses() == 0));
}

#[test]
fn fifteen_sm_harness_run_is_deterministic() {
    let runner = Runner::new(RunScale::Tiny).with_sms(15);
    let a = runner.run_one(Benchmark::Backprop, SchedulerKind::CiaoC);
    let b = runner.run_one(Benchmark::Backprop, SchedulerKind::CiaoC);
    assert_eq!(a.num_sms, 15);
    assert_eq!(a.per_sm.len(), 15);
    assert!(a.stats.instructions > 0);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.per_sm, b.per_sm);
    assert_eq!(a.time_series, b.time_series);
    assert_eq!(a.interference, b.interference);
}

proptest! {
    /// The CTA dispatcher assigns every block exactly once, whatever the
    /// (blocks, SMs) shape.
    #[test]
    fn dispatcher_assigns_every_block_exactly_once(blocks in 0usize..2000, sms in 1usize..64) {
        let lists = dispatch_round_robin(blocks, sms);
        prop_assert_eq!(lists.len(), sms);
        let mut count = vec![0usize; blocks];
        for list in &lists {
            for &b in list {
                prop_assert!(b < blocks);
                count[b] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1), "every block dispatched exactly once");
        // Round-robin balance: SM loads differ by at most one block.
        let (min, max) = (
            lists.iter().map(Vec::len).min().unwrap_or(0),
            lists.iter().map(Vec::len).max().unwrap_or(0),
        );
        prop_assert!(max - min <= 1);
    }
}
