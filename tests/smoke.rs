//! Workspace-level smoke test: the whole pipeline — workload generation,
//! simulation, scheduling, metric extraction — produces forward progress for
//! a baseline scheduler (GTO) and the paper's headline configuration (CIAO-C).

use ciao_suite::prelude::*;

#[test]
fn tiny_runs_produce_positive_ipc_for_gto_and_ciao_c() {
    let runner = Runner::new(RunScale::Tiny);
    for scheduler in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
        let record = runner.record(Benchmark::Syrk, scheduler);
        assert!(
            record.ipc > 0.0,
            "{} produced no forward progress on SYRK: {record:?}",
            record.scheduler
        );
        assert!(record.instructions > 0);
        assert!(record.cycles > 0);
    }
}

#[test]
fn run_records_serialize_to_json() {
    let runner = Runner::new(RunScale::Tiny);
    let record = runner.record(Benchmark::Nn, SchedulerKind::CiaoC);
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    assert!(json.contains("\"benchmark\": \"NN\""));
    assert!(json.contains("\"scheduler\": \"CIAO-C\""));
}
