//! Cross-crate integration tests: full simulations of synthetic benchmarks
//! under every scheduler, checking the invariants that must hold regardless
//! of policy, plus the qualitative result shapes the paper reports.

use ciao_suite::prelude::*;

fn runner() -> Runner {
    Runner::new(RunScale::Tiny)
}

#[test]
fn every_scheduler_completes_every_class_representative() {
    let runner = runner();
    let representatives = [Benchmark::Kmn, Benchmark::Syrk, Benchmark::Nn];
    for &bench in &representatives {
        for sched in SchedulerKind::all() {
            let res = runner.run_one(bench, sched);
            assert!(res.stats.instructions > 0, "{bench} under {sched} executed nothing");
            assert!(res.cycles > 0);
            assert!(res.ipc() > 0.0, "{bench} under {sched} has zero IPC");
            assert!(
                res.stats.l1d.hit_rate() >= 0.0 && res.stats.l1d.hit_rate() <= 1.0,
                "hit rate out of range"
            );
            // Conservation: hits + misses == accesses.
            assert_eq!(res.stats.l1d.hits() + res.stats.l1d.misses(), res.stats.l1d.accesses());
        }
    }
}

#[test]
fn same_work_is_executed_regardless_of_scheduler() {
    // Schedulers change the order and the memory path, not the work: the
    // dynamic instruction count must match across schedulers when no cap is
    // hit (tiny runs of a small CI benchmark finish completely).
    let runner = runner();
    let counts: Vec<u64> = [SchedulerKind::Gto, SchedulerKind::Ccws, SchedulerKind::CiaoC]
        .iter()
        .map(|&s| runner.run_one(Benchmark::Nn, s).stats.instructions)
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "instruction counts differ: {counts:?}");
}

#[test]
fn determinism_end_to_end() {
    let runner = runner();
    for sched in [SchedulerKind::Gto, SchedulerKind::CiaoC] {
        let a = runner.run_one(Benchmark::Gesummv, sched);
        let b = runner.run_one(Benchmark::Gesummv, sched);
        assert_eq!(a.cycles, b.cycles, "{sched} is not deterministic");
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.stats.l1d, b.stats.l1d);
    }
}

#[test]
fn ciao_reduces_interference_on_a_cache_thrashing_workload() {
    // The central claim of the paper, checked qualitatively: on a
    // memory-intensive SWS workload, CIAO-C must not lose to GTO, and the
    // interference (cross-warp evictions) per instruction must not grow.
    let runner = Runner::new(RunScale::Quick);
    let gto = runner.run_one(Benchmark::Syrk, SchedulerKind::Gto);
    let ciao = runner.run_one(Benchmark::Syrk, SchedulerKind::CiaoC);

    let gto_intf_rate = (gto.stats.cross_warp_evictions + gto.stats.redirect_cross_warp_evictions)
        as f64
        / gto.stats.instructions.max(1) as f64;
    let ciao_intf_rate = (ciao.stats.cross_warp_evictions
        + ciao.stats.redirect_cross_warp_evictions) as f64
        / ciao.stats.instructions.max(1) as f64;

    assert!(
        ciao.ipc() >= gto.ipc() * 0.95,
        "CIAO-C IPC {} should not regress vs GTO {}",
        ciao.ipc(),
        gto.ipc()
    );
    assert!(
        ciao_intf_rate <= gto_intf_rate * 1.05,
        "CIAO-C interference rate {ciao_intf_rate} should not exceed GTO {gto_intf_rate}"
    );
}

#[test]
fn ciao_p_uses_the_shared_memory_cache_on_sws_workloads() {
    let runner = Runner::new(RunScale::Quick);
    let res = runner.run_one(Benchmark::Gesummv, SchedulerKind::CiaoP);
    // The redirect path must actually be exercised: either isolations
    // happened (redirect hits/misses observed) or no interference existed at
    // all (in which case the L1D hit rate must be healthy).
    let redirect_traffic = res.stats.redirect_hits + res.stats.redirect_misses;
    assert!(
        redirect_traffic > 0 || res.stats.l1d.hit_rate() > 0.5,
        "CIAO-P neither redirected traffic ({redirect_traffic}) nor ran interference-free (hit rate {})",
        res.stats.l1d.hit_rate()
    );
}

#[test]
fn ccws_throttles_and_best_swl_limits_tlp() {
    let runner = runner();
    // Best-SWL on ATAX (Nwrp = 2) must keep mean active warps low.
    let swl = runner.run_one(Benchmark::Atax, SchedulerKind::BestSwl);
    let gto = runner.run_one(Benchmark::Atax, SchedulerKind::Gto);
    assert!(
        swl.time_series.mean_active_warps() <= gto.time_series.mean_active_warps(),
        "Best-SWL must not run more warps than GTO"
    );
    // CCWS on a thrashing workload must report VTA activity.
    let ccws = runner.run_one(Benchmark::Kmn, SchedulerKind::Ccws);
    assert!(
        ccws.scheduler_metrics.vta_hits > 0,
        "CCWS saw no lost locality on a thrashing workload"
    );
}

#[test]
fn stalled_warps_always_finish() {
    // Throttling schedulers must never starve the SM: a starved run would
    // spin until the cycle cap while retiring almost no instructions. Either
    // the kernel finishes outright, or it keeps retiring instructions all the
    // way up to the configured instruction cap.
    let runner = runner();
    let cap = RunScale::Tiny.max_instructions();
    for sched in
        [SchedulerKind::Ccws, SchedulerKind::BestSwl, SchedulerKind::CiaoT, SchedulerKind::CiaoC]
    {
        let res = runner.run_one(Benchmark::Wc, sched);
        assert!(
            !res.capped || res.stats.instructions >= cap,
            "{sched}: run stopped after only {} instructions — warps appear starved",
            res.stats.instructions
        );
    }
}

#[test]
fn table2_classes_are_reflected_in_measured_memory_intensity() {
    let runner = runner();
    let lws = runner.run_one(Benchmark::Atax, SchedulerKind::Gto).stats.apki();
    let ci = runner.run_one(Benchmark::Hotspot, SchedulerKind::Gto).stats.apki();
    assert!(
        lws > 3.0 * ci.max(0.1),
        "memory-intensive benchmarks must measure much higher APKI (LWS {lws} vs CI {ci})"
    );
}

#[test]
fn overhead_report_is_consistent_with_detector_storage() {
    use ciao_suite::ciao::detector::InterferenceDetector;
    let report = OverheadModel::default().report();
    let detector = InterferenceDetector::new(48);
    // The detector's own storage accounting must not exceed what the overhead
    // model charges for the same structures (the model adds the 64-entry
    // lists sized for the architectural maximum).
    assert!(detector.storage_bits() <= r_total(&report));
    fn r_total(r: &ciao_suite::ciao::OverheadReport) -> u64 {
        r.vta_bits_per_sm + r.counter_and_list_bits_per_sm
    }
}
