//! Integration tests for the fleet tier: traffic generation statistics,
//! seed purity, and the fleet determinism guarantee (worker count is a
//! wall-clock knob, never a model knob) checked property-style across
//! random fleet shapes.

use ciao_suite::fleet::{
    Calibration, Fleet, FleetRequest, PlacementPolicy, TrafficSpec, FLEET_SCHEMA_VERSION,
};
use proptest::prelude::*;

/// One fleet run at a given worker count, serialised to JSON.
fn run_json(
    chips: usize,
    arrivals: usize,
    seed: u64,
    placement: PlacementPolicy,
    workers: usize,
) -> String {
    let traffic = TrafficSpec::new(arrivals, seed)
        .with_mean_interarrival(500.0)
        .with_work_range(2_000, 100_000);
    let req = FleetRequest::new(traffic)
        .chips(chips)
        .placement(placement)
        .workers(workers)
        .calibration(Calibration::reference(8));
    serde_json::to_string(&Fleet::new().execute(req)).expect("fleet result serialises")
}

#[test]
fn traffic_generation_is_seed_pure() {
    let spec = TrafficSpec::new(50_000, 7);
    let a = spec.generate();
    let b = spec.generate();
    assert_eq!(a, b, "same spec, same stream");
    let json_a = serde_json::to_string(&a).unwrap();
    let json_b = serde_json::to_string(&b).unwrap();
    assert_eq!(json_a, json_b, "byte-identical serialisation");
    let other = TrafficSpec::new(50_000, 8).generate();
    assert_ne!(a, other, "different seed, different stream");
}

#[test]
fn traffic_mean_interarrival_matches_the_spec() {
    let mean = 1_250.0;
    let arrivals = TrafficSpec::new(200_000, 3).with_mean_interarrival(mean).generate();
    let span = arrivals.last().unwrap().cycle - arrivals.first().unwrap().cycle;
    let measured = span as f64 / (arrivals.len() - 1) as f64;
    let err = (measured - mean).abs() / mean;
    assert!(err < 0.05, "measured mean {measured:.1} vs spec {mean} ({:.1}% off)", err * 100.0);
}

#[test]
fn fleet_acceptance_shape_runs_and_reports() {
    // A scaled-down version of the acceptance command
    // (`fleet --chips 8 --arrivals 1000000 --seed 0`): every arrival
    // completes, STP is within physical bounds, SLO counts are populated.
    let traffic = TrafficSpec::new(50_000, 0);
    let req = FleetRequest::new(traffic).chips(8).workers(8).calibration(Calibration::reference(8));
    let res = Fleet::new().execute(req);
    assert_eq!(res.schema_version, FLEET_SCHEMA_VERSION);
    assert_eq!(res.arrivals, 50_000);
    assert_eq!(res.per_class.iter().map(|c| c.jobs).sum::<u64>(), 50_000);
    assert!(res.fleet_stp > 0.0 && res.fleet_stp <= 8.0 + 1e-9);
    assert!(res.per_class.iter().any(|c| c.latency == "interactive"));
    assert!(res.per_class.iter().any(|c| c.latency == "batch"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The fleet determinism guarantee: for any small fleet shape and both
    /// placement policies, running with 1 worker and 8 workers produces
    /// JSON-identical results.
    #[test]
    fn fleet_results_are_json_identical_across_worker_counts(
        chips in 2usize..5,
        arrivals in 500usize..2_000,
        seed in 0u64..1_000,
        spread in any::<bool>(),
    ) {
        let placement = if spread {
            PlacementPolicy::InterferenceSpread
        } else {
            PlacementPolicy::BinPack
        };
        let solo = run_json(chips, arrivals, seed, placement, 1);
        let fleet = run_json(chips, arrivals, seed, placement, 8);
        prop_assert_eq!(solo, fleet, "worker count leaked into the model");
    }
}
