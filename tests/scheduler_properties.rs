//! Property-based integration tests: randomised workloads run end-to-end
//! through the simulator under every scheduler, checking the invariants that
//! must hold for *any* workload, not just the Table II benchmarks.

use ciao_suite::prelude::*;
use ciao_suite::sim::kernel::{ClosureKernel, KernelInfo};
use ciao_suite::sim::trace::{VecProgram, WarpOp};
use ciao_suite::sim::Kernel;
use proptest::prelude::*;

/// Builds a random but deterministic kernel description.
fn arbitrary_kernel(
    ctas: usize,
    warps_per_cta: usize,
    ops: usize,
    mem_every: usize,
    seed: u64,
) -> Box<dyn Kernel> {
    let info = KernelInfo {
        name: format!("prop-{seed}"),
        num_ctas: ctas,
        warps_per_cta,
        shared_mem_per_cta: 0,
    };
    Box::new(ClosureKernel::new(info, move |cta, w| {
        let mut v = Vec::with_capacity(ops);
        for i in 0..ops {
            if mem_every > 0 && i % mem_every == 0 {
                // Mix of private streaming and a shared hot region so some
                // runs exhibit interference.
                let addr = if i % (2 * mem_every) == 0 {
                    (seed % 64) * 128 + (i as u64 % 32) * 128
                } else {
                    (1 << 24) + (cta as u64 * 64 + w as u64 * 8 + i as u64) * 128
                };
                v.push(WarpOp::coalesced_load(addr));
            } else {
                v.push(WarpOp::Compute { cycles: 1 + (i as u32 % 4) });
            }
        }
        Box::new(VecProgram::new(v))
    }))
}

fn run_with(kernel: Box<dyn Kernel>, sched: SchedulerKind) -> SimResult {
    let config = GpuConfig::gtx480().with_max_instructions(20_000).with_sample_interval(1_000);
    let sim = Simulator::new(config.clone());
    sim.execute(SimRequest::kernel(std::sync::Arc::from(kernel)).num_sms(1), |_sm| {
        sched.build(Benchmark::Syrk, &config, &ciao_suite::ciao::CiaoParams::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every scheduler finishes every random workload, executes exactly the
    /// same number of instructions, and keeps the L1D statistics consistent.
    #[test]
    fn all_schedulers_complete_random_workloads(
        ctas in 1usize..4,
        warps in 1usize..6,
        ops in 8usize..80,
        mem_every in 1usize..6,
        seed in 0u64..1000,
    ) {
        let expected_instructions = (ctas * warps * ops) as u64;
        let mut counts = Vec::new();
        for sched in [SchedulerKind::Gto, SchedulerKind::Ccws, SchedulerKind::BestSwl,
                      SchedulerKind::StatPcal, SchedulerKind::CiaoT, SchedulerKind::CiaoP, SchedulerKind::CiaoC] {
            let res = run_with(arbitrary_kernel(ctas, warps, ops, mem_every, seed), sched);
            prop_assert!(!res.capped, "{} hit a cap on a small workload", res.scheduler);
            prop_assert_eq!(res.stats.instructions, expected_instructions,
                "{} executed the wrong amount of work", res.scheduler);
            prop_assert_eq!(res.stats.l1d.hits() + res.stats.l1d.misses(), res.stats.l1d.accesses());
            prop_assert!(res.cycles > 0);
            counts.push(res.stats.instructions);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    /// The interference matrix is consistent with the cross-warp eviction
    /// counter for any workload and scheduler.
    #[test]
    fn interference_accounting_is_consistent(
        warps in 2usize..8,
        ops in 16usize..64,
        seed in 0u64..1000,
    ) {
        let res = run_with(arbitrary_kernel(1, warps, ops, 1, seed), SchedulerKind::Gto);
        let matrix_total = res.interference.total();
        prop_assert_eq!(matrix_total, res.stats.cross_warp_evictions + res.stats.redirect_cross_warp_evictions);
    }
}
