//! Property-based integration tests: randomised workloads run end-to-end
//! through the simulator under every scheduler, checking the invariants that
//! must hold for *any* workload, not just the Table II benchmarks.

use ciao_suite::prelude::*;
use ciao_suite::sim::kernel::{ClosureKernel, KernelInfo};
use ciao_suite::sim::trace::{VecProgram, WarpOp};
use ciao_suite::sim::Kernel;
use proptest::prelude::*;

/// Builds a random but deterministic kernel description.
fn arbitrary_kernel(
    ctas: usize,
    warps_per_cta: usize,
    ops: usize,
    mem_every: usize,
    seed: u64,
) -> Box<dyn Kernel> {
    let info = KernelInfo {
        name: format!("prop-{seed}"),
        num_ctas: ctas,
        warps_per_cta,
        shared_mem_per_cta: 0,
    };
    Box::new(ClosureKernel::new(info, move |cta, w| {
        let mut v = Vec::with_capacity(ops);
        for i in 0..ops {
            if mem_every > 0 && i % mem_every == 0 {
                // Mix of private streaming and a shared hot region so some
                // runs exhibit interference.
                let addr = if i % (2 * mem_every) == 0 {
                    (seed % 64) * 128 + (i as u64 % 32) * 128
                } else {
                    (1 << 24) + (cta as u64 * 64 + w as u64 * 8 + i as u64) * 128
                };
                v.push(WarpOp::coalesced_load(addr));
            } else {
                v.push(WarpOp::Compute { cycles: 1 + (i as u32 % 4) });
            }
        }
        Box::new(VecProgram::new(v))
    }))
}

fn run_with(kernel: Box<dyn Kernel>, sched: SchedulerKind) -> SimResult {
    let config = GpuConfig::gtx480().with_max_instructions(20_000).with_sample_interval(1_000);
    let sim = Simulator::new(config.clone());
    sim.execute(SimRequest::kernel(std::sync::Arc::from(kernel)).num_sms(1), |_sm| {
        sched.build(Benchmark::Syrk, &config, &ciao_suite::ciao::CiaoParams::default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Every scheduler finishes every random workload, executes exactly the
    /// same number of instructions, and keeps the L1D statistics consistent.
    #[test]
    fn all_schedulers_complete_random_workloads(
        ctas in 1usize..4,
        warps in 1usize..6,
        ops in 8usize..80,
        mem_every in 1usize..6,
        seed in 0u64..1000,
    ) {
        let expected_instructions = (ctas * warps * ops) as u64;
        let mut counts = Vec::new();
        for sched in [SchedulerKind::Gto, SchedulerKind::Ccws, SchedulerKind::BestSwl,
                      SchedulerKind::StatPcal, SchedulerKind::CiaoT, SchedulerKind::CiaoP, SchedulerKind::CiaoC] {
            let res = run_with(arbitrary_kernel(ctas, warps, ops, mem_every, seed), sched);
            prop_assert!(!res.capped, "{} hit a cap on a small workload", res.scheduler);
            prop_assert_eq!(res.stats.instructions, expected_instructions,
                "{} executed the wrong amount of work", res.scheduler);
            prop_assert_eq!(res.stats.l1d.hits() + res.stats.l1d.misses(), res.stats.l1d.accesses());
            prop_assert!(res.cycles > 0);
            counts.push(res.stats.instructions);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    /// The interference matrix is consistent with the cross-warp eviction
    /// counter for any workload and scheduler.
    #[test]
    fn interference_accounting_is_consistent(
        warps in 2usize..8,
        ops in 16usize..64,
        seed in 0u64..1000,
    ) {
        let res = run_with(arbitrary_kernel(1, warps, ops, 1, seed), SchedulerKind::Gto);
        let matrix_total = res.interference.total();
        prop_assert_eq!(matrix_total, res.stats.cross_warp_evictions + res.stats.redirect_cross_warp_evictions);
    }
}

/// Runs `kernel` on the chip engine (`sms` SMs, shared L2/DRAM) under the
/// chosen timing backend, with a configurable time-series sample interval.
fn run_chip(
    kernel: Box<dyn Kernel>,
    sched: SchedulerKind,
    backend: gpu_sim::BackendKind,
    sms: usize,
    sample_interval: u64,
) -> SimResult {
    let config =
        GpuConfig::gtx480().with_max_instructions(40_000).with_sample_interval(sample_interval);
    let sim = Simulator::new(config.clone());
    sim.execute(
        SimRequest::kernel(std::sync::Arc::from(kernel)).num_sms(sms).backend(backend),
        |_sm| sched.build(Benchmark::Syrk, &config, &ciao_suite::ciao::CiaoParams::default()),
    )
}

/// Serialises a result with the backend label normalised away, so epoch and
/// event runs can be compared bit-for-bit.
fn normalized_json(mut res: SimResult) -> String {
    res.backend = String::new();
    serde_json::to_string(&res).expect("SimResult serialises")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The event core's closed-form idle accounting must compose exactly:
    /// one `on_idle_cycles(ctx, k)` call has to leave every scheduler in the
    /// same state as `k` single idle cycles would. Running the same workload
    /// under both timing backends for each scheduler family (CCWS score
    /// decay, SWL recompute, statPCAL utilization tracking, CIAO's
    /// throttle/redirect fixed point) proves the equivalence end-to-end:
    /// any divergence shows up as a differing serialised result.
    #[test]
    fn closed_form_idle_accounting_matches_per_cycle_for_every_scheduler(
        ctas in 1usize..5,
        warps in 1usize..5,
        ops in 8usize..48,
        mem_every in 1usize..4,
        seed in 0u64..1000,
    ) {
        for sched in [SchedulerKind::Ccws, SchedulerKind::BestSwl,
                      SchedulerKind::StatPcal, SchedulerKind::CiaoT] {
            let kernel = || arbitrary_kernel(ctas, warps, ops, mem_every, seed);
            let epoch = run_chip(kernel(), sched, gpu_sim::BackendKind::Epoch, 2, 1_000);
            let event = run_chip(kernel(), sched, gpu_sim::BackendKind::Event, 2, 1_000);
            prop_assert_eq!(
                normalized_json(epoch),
                normalized_json(event),
                "event backend diverged from the epoch oracle under {:?}",
                sched
            );
        }
    }

    /// Sampler-due edges: with tiny (including degenerate) sample intervals
    /// the instruction-indexed time-series sampler comes due at arbitrary
    /// alignments — including exactly at a dispatch boundary, where the
    /// event core must refuse to skip and step the cycle instead. Both
    /// backends must stay bit-identical through every alignment.
    #[test]
    fn sampler_due_exactly_at_a_boundary_cannot_desync_the_backends(
        warps in 1usize..5,
        ops in 8usize..40,
        seed in 0u64..1000,
        sample_interval in 0u64..16,
    ) {
        let kernel = || arbitrary_kernel(2, warps, ops, 2, seed);
        let epoch =
            run_chip(kernel(), SchedulerKind::CiaoC, gpu_sim::BackendKind::Epoch, 2, sample_interval);
        let event =
            run_chip(kernel(), SchedulerKind::CiaoC, gpu_sim::BackendKind::Event, 2, sample_interval);
        prop_assert_eq!(normalized_json(epoch), normalized_json(event),
            "sample interval {} desynced the backends", sample_interval);
    }

    /// Zero-warp SMs: a one-CTA kernel on a multi-SM chip leaves every other
    /// SM without a single warp for the whole run. Those SMs must park
    /// harmlessly in the event core (idle-skip with nothing to wake for)
    /// and the result must match the epoch oracle stepping them cycle by
    /// cycle.
    #[test]
    fn zero_warp_sms_park_without_desyncing_the_backends(
        warps in 1usize..5,
        ops in 8usize..32,
        seed in 0u64..1000,
        sms in 2usize..6,
    ) {
        let expected_instructions = (warps * ops) as u64;
        let kernel = || arbitrary_kernel(1, warps, ops, 2, seed);
        let epoch = run_chip(kernel(), SchedulerKind::CiaoC, gpu_sim::BackendKind::Epoch, sms, 1_000);
        let event = run_chip(kernel(), SchedulerKind::CiaoC, gpu_sim::BackendKind::Event, sms, 1_000);
        prop_assert_eq!(epoch.stats.instructions, expected_instructions);
        prop_assert_eq!(normalized_json(epoch), normalized_json(event),
            "an SM with zero warps desynced the backends at {} SMs", sms);
    }
}
